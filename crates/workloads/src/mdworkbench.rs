//! MDWorkbench (Kunkel & Markomanolis): metadata latency benchmark.
//!
//! §5.1.2: *"creates 10 directories per process and fills each directory with
//! 400 files, each sized 2 KB [/8 KB]. Both MDWorkbench workloads ran for
//! three rounds, where each round conducted open, write, close, stat, open,
//! read, close, and unlink operations on each file."*
//!
//! Note on the op sequence: a file unlinked in round k is recreated at the
//! start of round k+1 (MDWorkbench's working-set semantics), so each round
//! performs create/write/close then stat/open/read/close/unlink per file.

use crate::{scale_count, CostHint, Workload};
use pfs::ops::{DirId, FileId, IoOp, Module, RankStream};
use pfs::topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// MDWorkbench configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdWorkbench {
    /// Label ("MDWorkbench_2K", "MDWorkbench_8K").
    pub label: String,
    /// Directories per rank.
    pub dirs_per_rank: u32,
    /// Files per directory.
    pub files_per_dir: u32,
    /// File size in bytes.
    pub file_size: u64,
    /// Benchmark rounds over the working set.
    pub rounds: u32,
}

impl MdWorkbench {
    /// The paper's `MDWorkbench_2K`: 10 directories per process, 400 files
    /// per directory, 2 KiB files, three rounds.
    pub fn mdw_2k() -> Self {
        MdWorkbench {
            label: "MDWorkbench_2K".into(),
            dirs_per_rank: 10,
            files_per_dir: 400,
            file_size: 2 * 1024,
            rounds: 3,
        }
    }

    /// The paper's `MDWorkbench_8K`: as `mdw_2k` but with 8 KiB files.
    pub fn mdw_8k() -> Self {
        MdWorkbench {
            label: "MDWorkbench_8K".into(),
            dirs_per_rank: 10,
            files_per_dir: 400,
            file_size: 8 * 1024,
            rounds: 3,
        }
    }

    /// Files per rank.
    pub fn files_per_rank(&self) -> u32 {
        self.dirs_per_rank * self.files_per_dir
    }
}

impl Workload for MdWorkbench {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn generate(&self, topo: &ClusterSpec, _seed: u64) -> Vec<RankStream> {
        let nranks = topo.total_ranks();
        let fpr = self.files_per_rank();
        let mut streams = Vec::with_capacity(nranks as usize);
        for rank in 0..nranks {
            let mut s = RankStream::new(rank, Module::Posix);
            // Private directory tree per rank: no shared-dir contention,
            // matching MDWorkbench's default per-process working sets.
            let dir_base = 1 + rank * self.dirs_per_rank;
            let file_base = 1 + rank * fpr;
            for d in 0..self.dirs_per_rank {
                s.push(IoOp::Mkdir {
                    dir: DirId(dir_base + d),
                });
            }
            s.push(IoOp::Barrier);
            for round in 0..self.rounds {
                for d in 0..self.dirs_per_rank {
                    let dir = DirId(dir_base + d);
                    // Phase 1: (re)create and write every file in the dir.
                    for f in 0..self.files_per_dir {
                        let file = FileId(file_base + d * self.files_per_dir + f);
                        s.push(IoOp::Create { file, dir });
                        s.push(IoOp::Write {
                            file,
                            offset: 0,
                            len: self.file_size,
                        });
                        s.push(IoOp::Close { file });
                    }
                    // Phase 2: stat, open, read, close, unlink each file,
                    // in creation order (this is what statahead accelerates).
                    for f in 0..self.files_per_dir {
                        let file = FileId(file_base + d * self.files_per_dir + f);
                        s.push(IoOp::Stat { file });
                        s.push(IoOp::Open { file });
                        s.push(IoOp::Read {
                            file,
                            offset: 0,
                            len: self.file_size,
                        });
                        s.push(IoOp::Close { file });
                        s.push(IoOp::Unlink { file });
                    }
                }
                let _ = round;
            }
            s.push(IoOp::Barrier);
            streams.push(s);
        }
        streams
    }

    fn scaled(&self, factor: f64) -> Box<dyn Workload> {
        let mut w = self.clone();
        w.files_per_dir = scale_count(self.files_per_dir as u64, factor, 2) as u32;
        w.dirs_per_rank = scale_count(self.dirs_per_rank as u64, factor.sqrt(), 1) as u32;
        Box::new(w)
    }

    fn cost_hint(&self, topo: &ClusterSpec) -> CostHint {
        let nranks = topo.total_ranks() as u64;
        let fpr = self.files_per_rank() as u64;
        let rounds = self.rounds as u64;
        CostHint {
            // One write + one read per file per round.
            data_ops: nranks * rounds * fpr * 2,
            // Per file per round: create, close, stat, open, close, unlink;
            // plus the initial mkdirs.
            meta_ops: nranks * (self.dirs_per_rank as u64 + rounds * fpr * 6),
            bytes: nranks * rounds * fpr * 2 * self.file_size,
        }
    }

    fn describe(&self) -> String {
        format!(
            "MDWorkbench: {} dirs/rank x {} files/dir of {} KiB, {} rounds of \
             create/write/close + stat/open/read/close/unlink per file",
            self.dirs_per_rank,
            self.files_per_dir,
            self.file_size >> 10,
            self.rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClusterSpec {
        ClusterSpec::tiny()
    }

    #[test]
    fn op_counts_match_formula() {
        let w = MdWorkbench::mdw_8k();
        let streams = w.generate(&topo(), 1);
        let s = &streams[0];
        let fpr = w.files_per_rank() as usize;
        let per_round = fpr * (3 + 5); // create,write,close + stat,open,read,close,unlink
        let expected = w.dirs_per_rank as usize // mkdirs
            + w.rounds as usize * per_round
            + 2; // barriers
        assert_eq!(s.ops.len(), expected);
    }

    #[test]
    fn file_ids_disjoint_across_ranks() {
        let w = MdWorkbench::mdw_2k();
        let streams = w.generate(&topo(), 1);
        let collect = |s: &RankStream| -> Vec<u32> {
            let mut v: Vec<u32> = s
                .ops
                .iter()
                .filter_map(|o| match o {
                    IoOp::Create { file, .. } => Some(file.0),
                    _ => None,
                })
                .collect();
            v.sort();
            v.dedup();
            v
        };
        let a = collect(&streams[0]);
        let b = collect(&streams[1]);
        assert!(a.iter().all(|x| !b.contains(x)));
    }

    #[test]
    fn stats_follow_creation_order() {
        let w = MdWorkbench::mdw_2k();
        let streams = w.generate(&topo(), 1);
        // Within each dir's phase 2, stats must ascend in FileId (== creation
        // order), which is the statahead-friendly pattern.
        let stats: Vec<u32> = streams[0]
            .ops
            .iter()
            .filter_map(|o| match o {
                IoOp::Stat { file } => Some(file.0),
                _ => None,
            })
            .collect();
        let per_dir = w.files_per_dir as usize;
        for dir_stats in stats.chunks(per_dir) {
            for pair in dir_stats.windows(2) {
                assert_eq!(pair[1], pair[0] + 1);
            }
        }
    }

    #[test]
    fn bytes_match_sizes() {
        let w = MdWorkbench::mdw_8k();
        let streams = w.generate(&topo(), 1);
        let per_rank = w.files_per_rank() as u64 * w.rounds as u64 * w.file_size;
        assert_eq!(streams[0].bytes_written(), per_rank);
        assert_eq!(streams[0].bytes_read(), per_rank);
    }

    #[test]
    fn every_created_file_is_unlinked() {
        let w = MdWorkbench::mdw_2k();
        let streams = w.generate(&topo(), 1);
        let creates = streams[0]
            .ops
            .iter()
            .filter(|o| matches!(o, IoOp::Create { .. }))
            .count();
        let unlinks = streams[0]
            .ops
            .iter()
            .filter(|o| matches!(o, IoOp::Unlink { .. }))
            .count();
        assert_eq!(creates, unlinks);
    }

    #[test]
    fn cost_hint_matches_generated_streams() {
        for w in [MdWorkbench::mdw_2k(), MdWorkbench::mdw_8k()] {
            let t = topo();
            let exact = crate::CostHint::from_streams(&w.generate(&t, 1));
            assert_eq!(w.cost_hint(&t), exact, "{}", w.label);
        }
    }

    #[test]
    fn scaled_reduces_files() {
        let w = MdWorkbench::mdw_2k();
        let small = w.scaled(0.1);
        let a = w.generate(&topo(), 1)[0].ops.len();
        let b = small.generate(&topo(), 1)[0].ops.len();
        assert!(b < a / 2);
    }
}
