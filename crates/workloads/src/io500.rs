//! The IO500 composite benchmark: IOR-Easy, IOR-Hard, MDTest-Easy,
//! MDTest-Hard phases run in sequence (§5.1.2: "sequential read/write with
//! large access sizes (IOR-Easy), random read/write with small access sizes
//! (IOR-Hard), and metadata-intensive workloads for empty (MDTest-Easy) and
//! small files (MDTest-Hard)").
//!
//! Phase geometries follow the real benchmark: IOR-Easy is file-per-process
//! with large aligned transfers; IOR-Hard is a single shared file with
//! 47008-byte *unaligned* interleaved records; MDTest-Easy creates empty
//! files in per-process directories; MDTest-Hard creates 3901-byte files in
//! one shared directory.

use crate::{scale_count, CostHint, Workload};
use pfs::ops::{DirId, FileId, IoOp, Module, RankStream};
use pfs::topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// IO500 configuration (sizes are per rank, pre-scaled for simulation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Io500 {
    /// IOR-Easy: bytes per rank (sequential, 2 MiB transfers, file-per-proc).
    pub easy_bytes_per_rank: u64,
    /// IOR-Hard: records per rank (47008-byte shared-file interleaved).
    pub hard_records_per_rank: u64,
    /// MDTest-Easy: empty files per rank (private dirs).
    pub md_easy_files_per_rank: u32,
    /// MDTest-Hard: 3901-byte files per rank (shared dir).
    pub md_hard_files_per_rank: u32,
}

/// IOR-Hard record size (the benchmark's fixed, deliberately unaligned size).
pub const HARD_RECORD: u64 = 47_008;
/// MDTest-Hard file size.
pub const MD_HARD_SIZE: u64 = 3_901;
/// IOR-Easy transfer size.
pub const EASY_TRANSFER: u64 = 2 << 20;

// Namespace carving for file/dir ids.
const EASY_FILE_BASE: u32 = 10_000;
const HARD_FILE: FileId = FileId(1);
const MD_EASY_FILE_BASE: u32 = 100_000;
const MD_HARD_FILE_BASE: u32 = 500_000;
const MD_EASY_DIR_BASE: u32 = 100;
const MD_HARD_DIR: DirId = DirId(99);

impl Io500 {
    /// Standard (simulation-scaled) IO500 instance.
    pub fn standard() -> Self {
        Io500 {
            easy_bytes_per_rank: 64 << 20,
            hard_records_per_rank: 600,
            md_easy_files_per_rank: 150,
            md_hard_files_per_rank: 80,
        }
    }
}

impl Workload for Io500 {
    fn name(&self) -> String {
        "IO500".into()
    }

    fn generate(&self, topo: &ClusterSpec, _seed: u64) -> Vec<RankStream> {
        let nranks = topo.total_ranks();
        let mut streams = Vec::with_capacity(nranks as usize);
        for rank in 0..nranks {
            let mut s = RankStream::new(rank, Module::MpiIo);

            // ---- Phase 1: IOR-Easy write (file per process, sequential).
            let easy_file = FileId(EASY_FILE_BASE + rank);
            s.push(IoOp::Create {
                file: easy_file,
                dir: DirId(0),
            });
            let transfers = self.easy_bytes_per_rank / EASY_TRANSFER;
            for i in 0..transfers {
                s.push(IoOp::Write {
                    file: easy_file,
                    offset: i * EASY_TRANSFER,
                    len: EASY_TRANSFER,
                });
            }
            s.push(IoOp::Close { file: easy_file });
            s.push(IoOp::Barrier);

            // ---- Phase 2: IOR-Hard write (shared file, interleaved 47008B).
            if rank == 0 {
                s.push(IoOp::Create {
                    file: HARD_FILE,
                    dir: DirId(0),
                });
            } else {
                s.push(IoOp::Open { file: HARD_FILE });
            }
            for seg in 0..self.hard_records_per_rank {
                let offset = (seg * nranks as u64 + rank as u64) * HARD_RECORD;
                s.push(IoOp::Write {
                    file: HARD_FILE,
                    offset,
                    len: HARD_RECORD,
                });
            }
            s.push(IoOp::Close { file: HARD_FILE });
            s.push(IoOp::Barrier);

            // ---- Phase 3: IOR-Easy read (task-shifted by one rank).
            let read_of = (rank + 1) % nranks;
            let read_file = FileId(EASY_FILE_BASE + read_of);
            s.push(IoOp::Open { file: read_file });
            for i in 0..transfers {
                s.push(IoOp::Read {
                    file: read_file,
                    offset: i * EASY_TRANSFER,
                    len: EASY_TRANSFER,
                });
            }
            s.push(IoOp::Close { file: read_file });
            s.push(IoOp::Barrier);

            // ---- Phase 4: IOR-Hard read (shifted segments).
            s.push(IoOp::Open { file: HARD_FILE });
            let hard_read_of = (rank + 1) % nranks;
            for seg in 0..self.hard_records_per_rank {
                let offset = (seg * nranks as u64 + hard_read_of as u64) * HARD_RECORD;
                s.push(IoOp::Read {
                    file: HARD_FILE,
                    offset,
                    len: HARD_RECORD,
                });
            }
            s.push(IoOp::Close { file: HARD_FILE });
            s.push(IoOp::Barrier);

            // ---- Phase 5: MDTest-Easy (empty files, private dir).
            let easy_dir = DirId(MD_EASY_DIR_BASE + rank);
            s.push(IoOp::Mkdir { dir: easy_dir });
            let md_easy_base = MD_EASY_FILE_BASE + rank * self.md_easy_files_per_rank;
            for f in 0..self.md_easy_files_per_rank {
                let file = FileId(md_easy_base + f);
                s.push(IoOp::Create {
                    file,
                    dir: easy_dir,
                });
                s.push(IoOp::Close { file });
            }
            for f in 0..self.md_easy_files_per_rank {
                s.push(IoOp::Stat {
                    file: FileId(md_easy_base + f),
                });
            }
            for f in 0..self.md_easy_files_per_rank {
                s.push(IoOp::Unlink {
                    file: FileId(md_easy_base + f),
                });
            }
            s.push(IoOp::Barrier);

            // ---- Phase 6: MDTest-Hard (small files, one shared directory).
            if rank == 0 {
                s.push(IoOp::Mkdir { dir: MD_HARD_DIR });
            }
            s.push(IoOp::Barrier);
            let md_hard_base = MD_HARD_FILE_BASE + rank * self.md_hard_files_per_rank;
            for f in 0..self.md_hard_files_per_rank {
                let file = FileId(md_hard_base + f);
                s.push(IoOp::Create {
                    file,
                    dir: MD_HARD_DIR,
                });
                s.push(IoOp::Write {
                    file,
                    offset: 0,
                    len: MD_HARD_SIZE,
                });
                s.push(IoOp::Close { file });
            }
            s.push(IoOp::Barrier);
            for f in 0..self.md_hard_files_per_rank {
                let file = FileId(md_hard_base + f);
                s.push(IoOp::Stat { file });
                s.push(IoOp::Open { file });
                s.push(IoOp::Read {
                    file,
                    offset: 0,
                    len: MD_HARD_SIZE,
                });
                s.push(IoOp::Close { file });
            }
            s.push(IoOp::Barrier);
            for f in 0..self.md_hard_files_per_rank {
                s.push(IoOp::Unlink {
                    file: FileId(md_hard_base + f),
                });
            }
            s.push(IoOp::Barrier);

            streams.push(s);
        }
        streams
    }

    fn scaled(&self, factor: f64) -> Box<dyn Workload> {
        Box::new(Io500 {
            easy_bytes_per_rank: (scale_count(self.easy_bytes_per_rank / EASY_TRANSFER, factor, 1))
                * EASY_TRANSFER,
            hard_records_per_rank: scale_count(self.hard_records_per_rank, factor, 2),
            md_easy_files_per_rank: scale_count(self.md_easy_files_per_rank as u64, factor, 2)
                as u32,
            md_hard_files_per_rank: scale_count(self.md_hard_files_per_rank as u64, factor, 2)
                as u32,
        })
    }

    fn cost_hint(&self, topo: &ClusterSpec) -> CostHint {
        let nranks = topo.total_ranks() as u64;
        let transfers = self.easy_bytes_per_rank / EASY_TRANSFER;
        let records = self.hard_records_per_rank;
        let md_easy = self.md_easy_files_per_rank as u64;
        let md_hard = self.md_hard_files_per_rank as u64;
        CostHint {
            // Easy write+read, hard write+read, md-hard write+read.
            data_ops: nranks * 2 * (transfers + records + md_hard),
            // Four IOR phases (create/open + close each), MDTest-Easy
            // (mkdir + create/close/stat/unlink per file), MDTest-Hard
            // (create/close + stat/open/close + unlink per file), plus the
            // one shared mkdir rank 0 issues.
            meta_ops: nranks * (8 + 1 + 4 * md_easy + 6 * md_hard) + 1,
            bytes: nranks
                * 2
                * (transfers * EASY_TRANSFER + records * HARD_RECORD + md_hard * MD_HARD_SIZE),
        }
    }

    fn describe(&self) -> String {
        format!(
            "IO500 composite: IOR-Easy ({} MiB/rank sequential, file-per-process), \
             IOR-Hard ({} x 47008 B interleaved records to a shared file), \
             MDTest-Easy ({} empty files/rank), MDTest-Hard ({} x 3901 B files/rank \
             in one shared directory)",
            self.easy_bytes_per_rank >> 20,
            self.hard_records_per_rank,
            self.md_easy_files_per_rank,
            self.md_hard_files_per_rank
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClusterSpec {
        ClusterSpec::tiny()
    }

    #[test]
    fn phases_present_and_barriers_uniform() {
        let w = Io500::standard();
        let streams = w.generate(&topo(), 1);
        let counts: Vec<usize> = streams.iter().map(|s| s.barrier_count()).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        // Writes include easy + hard + mdtest-hard.
        let s = &streams[0];
        let easy = (64u64 << 20) / EASY_TRANSFER;
        let expected_writes = easy + 600 + 80;
        let writes = s
            .ops
            .iter()
            .filter(|o| matches!(o, IoOp::Write { .. }))
            .count() as u64;
        assert_eq!(writes, expected_writes);
    }

    #[test]
    fn hard_phase_interleaves_ranks() {
        let w = Io500::standard();
        let streams = w.generate(&topo(), 1);
        // Rank 0 seg 0 at 0; rank 1 seg 0 at 47008; rank 0 seg 1 at 4*47008.
        let hard_offsets = |s: &RankStream| -> Vec<u64> {
            s.ops
                .iter()
                .filter_map(|o| match o {
                    IoOp::Write { file, offset, .. } if *file == HARD_FILE => Some(*offset),
                    _ => None,
                })
                .collect()
        };
        let r0 = hard_offsets(&streams[0]);
        let r1 = hard_offsets(&streams[1]);
        assert_eq!(r0[0], 0);
        assert_eq!(r1[0], HARD_RECORD);
        assert_eq!(r0[1], 4 * HARD_RECORD);
    }

    #[test]
    fn md_hard_uses_shared_directory() {
        let w = Io500::standard();
        let streams = w.generate(&topo(), 1);
        for s in &streams {
            let dirs: Vec<DirId> = s
                .ops
                .iter()
                .filter_map(|o| match o {
                    IoOp::Create { file, dir } if file.0 >= MD_HARD_FILE_BASE => Some(*dir),
                    _ => None,
                })
                .collect();
            assert!(dirs.iter().all(|d| *d == MD_HARD_DIR));
        }
    }

    #[test]
    fn md_easy_files_are_empty() {
        let w = Io500::standard();
        let streams = w.generate(&topo(), 1);
        // No writes to MDTest-Easy file ids.
        for s in &streams {
            assert!(!s.ops.iter().any(|o| matches!(
                o,
                IoOp::Write { file, .. }
                    if file.0 >= MD_EASY_FILE_BASE && file.0 < MD_HARD_FILE_BASE
            )));
        }
    }

    #[test]
    fn cost_hint_matches_generated_streams() {
        let w = Io500::standard();
        let t = topo();
        let exact = crate::CostHint::from_streams(&w.generate(&t, 1));
        assert_eq!(w.cost_hint(&t), exact);
    }

    #[test]
    fn scaled_shrinks_everything() {
        let w = Io500::standard();
        let small = w.scaled(0.1);
        let a = w.generate(&topo(), 1)[0].ops.len();
        let b = small.generate(&topo(), 1)[0].ops.len();
        assert!(b < a / 4, "{b} vs {a}");
    }
}
