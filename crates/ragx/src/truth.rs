//! Ground-truth scoring of parameter facts — the Fig. 2 experiment.
//!
//! For each tuning target we compare (a) what a model recalls from
//! parametric memory and (b) what the RAG pipeline extracts, against the
//! registry's ground truth, and tally correct / imprecise / wrong marks for
//! definitions and ranges (the ✓ / ~ / ✗ of the figure).

use crate::extract::RagExtractor;
use llmsim::{FactQuality, LlmBackend, ModelProfile, ParamFact, SimLlm};
use pfs::params::{Bound, ParamRegistry, TUNABLE_NAMES};
use serde::{Deserialize, Serialize};

/// Tally of fact quality across parameters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FactScore {
    /// Source label (model name or "STELLAR RAG (gpt-4o)").
    pub source: String,
    /// Correct definitions.
    pub def_correct: usize,
    /// Imprecise definitions.
    pub def_imprecise: usize,
    /// Wrong definitions.
    pub def_wrong: usize,
    /// Correct ranges.
    pub range_correct: usize,
    /// Wrong ranges.
    pub range_wrong: usize,
}

impl FactScore {
    /// Parameters scored.
    pub fn total(&self) -> usize {
        self.def_correct + self.def_imprecise + self.def_wrong
    }
}

/// The ground-truth fact for a parameter (constant-bound view; dependent
/// bounds resolve with default values of their inputs for comparison).
pub fn truth_fact(registry: &ParamRegistry, name: &str) -> Option<ParamFact> {
    let def = registry.get(name)?;
    let env = pfs::params::TuningConfig::lustre_default()
        .env(&pfs::topology::ClusterSpec::paper_cluster());
    let min = def.min.resolve(&env).ok()?;
    let max = match &def.max {
        Bound::Const(v) => *v,
        Bound::Expr(_) => def.max.resolve(&env).ok()?,
    };
    Some(ParamFact::grounded(name, def.purpose, min, max))
}

/// Score a model's parametric memory over the 13 tuning targets.
pub fn score_parametric(registry: &ParamRegistry, profile: &ModelProfile) -> FactScore {
    let mut backend = SimLlm::new(profile.clone(), 0xF162);
    let mut score = FactScore {
        source: profile.name.to_string(),
        ..Default::default()
    };
    for name in TUNABLE_NAMES {
        let truth = truth_fact(registry, name).expect("targets have truth");
        let fact = backend.param_fact(&truth, false);
        tally(&mut score, &fact);
    }
    score
}

/// Score the RAG pipeline's grounded extraction over the same targets.
pub fn score_rag(extractor: &RagExtractor) -> FactScore {
    let mut score = FactScore {
        source: "STELLAR RAG (gpt-4o)".to_string(),
        ..Default::default()
    };
    for name in TUNABLE_NAMES {
        match extractor.grounded_fact(name) {
            Some(fact) => tally(&mut score, &fact),
            None => {
                score.def_wrong += 1;
                score.range_wrong += 1;
            }
        }
    }
    score
}

fn tally(score: &mut FactScore, fact: &ParamFact) {
    match fact.def_quality {
        FactQuality::Correct => score.def_correct += 1,
        FactQuality::Imprecise => score.def_imprecise += 1,
        FactQuality::Wrong => score.def_wrong += 1,
    }
    match fact.range_quality {
        FactQuality::Correct => score.range_correct += 1,
        _ => score.range_wrong += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rag_beats_every_parametric_model() {
        let reg = ParamRegistry::standard();
        let ex = RagExtractor::standard();
        let rag = score_rag(&ex);
        assert_eq!(rag.range_correct, 13, "{rag:?}");
        assert_eq!(rag.def_correct, 13);
        for p in [
            ModelProfile::gpt_45(),
            ModelProfile::gemini_25_pro(),
            ModelProfile::claude_37_sonnet(),
        ] {
            let s = score_parametric(&reg, &p);
            assert!(s.range_correct < rag.range_correct, "{}: {s:?}", p.name);
            assert_eq!(s.total(), 13);
        }
    }

    #[test]
    fn frontier_models_mostly_miss_ranges() {
        // Fig. 2: "All three were incorrect regarding the maximum accepted
        // value" — our profiles make wrong ranges the dominant outcome.
        let reg = ParamRegistry::standard();
        for p in [
            ModelProfile::gpt_45(),
            ModelProfile::gemini_25_pro(),
            ModelProfile::claude_37_sonnet(),
        ] {
            let s = score_parametric(&reg, &p);
            assert!(s.range_wrong > s.range_correct, "{}: {s:?}", p.name);
        }
    }

    #[test]
    fn scoring_is_deterministic() {
        let reg = ParamRegistry::standard();
        let a = score_parametric(&reg, &ModelProfile::gpt_45());
        let b = score_parametric(&reg, &ModelProfile::gpt_45());
        assert_eq!(a, b);
    }

    #[test]
    fn truth_fact_resolves_dependent_bounds() {
        let reg = ParamRegistry::standard();
        let f = truth_fact(&reg, "llite.max_read_ahead_per_file_mb").unwrap();
        assert_eq!(f.max, 32); // 64 / 2 with default settings
        let f2 = truth_fact(&reg, "mdc.max_mod_rpcs_in_flight").unwrap();
        assert_eq!(f2.max, 7); // min(8-1, 255)
    }
}
