//! # ragx — retrieval-augmented parameter extraction
//!
//! Reproduces §4.2's offline phase. The paper chunks the 600-page Lustre
//! manual with LlamaIndex (1024-token chunks, 20-token overlap), embeds with
//! `text-embedding-3-large`, retrieves top-K = 20 chunks per parameter
//! question, and runs a multi-step LLM filter (sufficiency → description +
//! range → binary exclusion → importance). This crate implements the same
//! pipeline against a synthetic manual:
//!
//! * [`manual`] — a Lustre-style operations manual generated from the
//!   parameter registry's ground truth plus general chapters and distractor
//!   prose, so retrieval has real work to do;
//! * [`chunk`] — the 1024/20 token chunker;
//! * [`embed`] — a feature-hashing n-gram embedder (the stand-in for
//!   `text-embedding-3-large`);
//! * [`index`] — a brute-force cosine vector index (rayon-parallel);
//! * [`extract`] — the multi-step filtering pipeline, yielding the 13
//!   tunables with accurate descriptions and (possibly dependent) ranges;
//! * [`truth`] — scoring of recalled facts against registry ground truth
//!   (the Fig. 2 experiment).

#![forbid(unsafe_code)]

pub mod chunk;
pub mod embed;
pub mod extract;
pub mod index;
pub mod manual;
pub mod truth;

pub use extract::{ExtractedParam, ExtractionReport, RagExtractor};
pub use index::VectorIndex;
