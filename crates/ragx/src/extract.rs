//! The multi-step RAG extraction pipeline of §4.2.2.
//!
//! Steps, in paper order:
//! 1. **Rough filter** — enumerate writable parameters from the `/proc`-style
//!    interface.
//! 2. **Retrieval** — query the vector index with *"How do I use the
//!    parameter X?"*, top-K = 20.
//! 3. **Sufficiency check** — does the retrieved context actually document
//!    the parameter? Undocumented parameters are dropped ("parameters that
//!    are not described in the documentation are likely to be of lesser
//!    importance").
//! 4. **Description + range** — parsed *from the retrieved text*, including
//!    `dependent`/`expression` ranges evaluated later against live values.
//! 5. **Binary exclusion** — boolean trade-off parameters dropped.
//! 6. **Importance selection** — keep parameters the documentation marks as
//!    primary performance levers.
//!
//! The pipeline is genuinely text-grounded: if retrieval misses a section,
//! the parameter is lost even though the registry knows it.

use crate::chunk::chunk_default;
use crate::index::VectorIndex;
use crate::manual::{generate_manual, section_marker};
use llmsim::{LlmBackend, ParamFact};
use pfs::params::{Bound, ParamRegistry};
use serde::{Deserialize, Serialize};

/// Retrieval depth (the paper's top-K of 20).
pub const TOP_K: usize = 20;

/// A parameter as extracted by the pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtractedParam {
    /// Canonical name.
    pub name: String,
    /// Description recovered from the manual (purpose + I/O effect).
    pub description: String,
    /// Lower bound (constant or dependent expression).
    pub min: Bound,
    /// Upper bound (constant or dependent expression).
    pub max: Bound,
    /// Documented default.
    pub default: i64,
    /// Unit string.
    pub unit: String,
}

/// Filter accounting for the extraction run (the T-PARAMS table).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExtractionReport {
    /// Parameters in the interface tree.
    pub total_params: usize,
    /// Survivors of the writability filter.
    pub writable: usize,
    /// Survivors of the sufficiency check.
    pub sufficient: usize,
    /// Survivors of the binary-exclusion filter.
    pub non_binary: usize,
    /// Final selected count.
    pub selected: usize,
    /// Names dropped for insufficient documentation.
    pub dropped_insufficient: Vec<String>,
    /// Names dropped as binary trade-offs.
    pub dropped_binary: Vec<String>,
    /// Names dropped as low-impact.
    pub dropped_low_impact: Vec<String>,
}

/// The offline extractor: manual index + interface tree.
pub struct RagExtractor {
    index: VectorIndex,
    registry: ParamRegistry,
    manual: String,
}

impl RagExtractor {
    /// Build the extractor: generate the manual, chunk it (1024/20), embed
    /// and index.
    pub fn from_registry(registry: ParamRegistry) -> Self {
        let manual = generate_manual(&registry);
        let index = VectorIndex::build(chunk_default(&manual));
        RagExtractor {
            index,
            registry,
            manual,
        }
    }

    /// The standard extractor for the simulated file system.
    pub fn standard() -> Self {
        Self::from_registry(ParamRegistry::standard())
    }

    /// The underlying registry (interface tree).
    pub fn registry(&self) -> &ParamRegistry {
        &self.registry
    }

    /// The vector index (exposed for retrieval benchmarks).
    pub fn index(&self) -> &VectorIndex {
        &self.index
    }

    /// Retrieve the documentation section for one parameter, if the index
    /// surfaces it within the top-K chunks. Retrieval decides *whether* the
    /// section is found; the complete section text is then expanded from the
    /// source document (chunks are windows and may truncate a section —
    /// LlamaIndex-style node expansion).
    pub fn retrieve_section(&self, name: &str) -> Option<String> {
        let question = format!("How do I use the parameter {name}?");
        let marker = section_marker(name);
        let hit = self
            .index
            .query(&question, TOP_K)
            .iter()
            .any(|(_, chunk)| chunk.contains(&marker));
        if !hit {
            return None;
        }
        let pos = self.manual.find(&marker)?;
        let after = &self.manual[pos + marker.len()..];
        let end = after.find("## PARAMETER REFERENCE:").unwrap_or(after.len());
        Some(after[..end].trim().to_string())
    }

    /// Grounded fact for one parameter (used by the Fig. 2 comparison and by
    /// the online agents when RAG is enabled). Returns `None` when retrieval
    /// cannot ground the parameter.
    pub fn grounded_fact(&self, name: &str) -> Option<ParamFact> {
        let section = self.retrieve_section(name)?;
        let def = self.registry.get(name)?;
        let (min, max) = parse_range(&section)?;
        let description = parse_description(&section);
        // Dependent bounds resolve at tuning time; represent them here with
        // the registry's i64 view only when constant.
        let min_v = match &min {
            Bound::Const(v) => *v,
            Bound::Expr(_) => def_min_fallback(def),
        };
        let max_v = match &max {
            Bound::Const(v) => *v,
            Bound::Expr(_) => def_max_fallback(def),
        };
        Some(ParamFact::grounded(name, &description, min_v, max_v))
    }

    /// Run the full pipeline. `backend` is the extraction LLM (the paper
    /// defaults to GPT-4o); it is token-metered per parameter judged.
    pub fn extract(&self, backend: &mut dyn LlmBackend) -> (Vec<ExtractedParam>, ExtractionReport) {
        let mut report = ExtractionReport {
            total_params: self.registry.len(),
            ..Default::default()
        };
        let mut out = Vec::new();
        for def in self.registry.writable() {
            report.writable += 1;
            let question = format!("How do I use the parameter {}?", def.name);
            let section = self.retrieve_section(def.name);
            let Some(section) = section else {
                report.dropped_insufficient.push(def.name.to_string());
                backend.charge(
                    &format!("{question}\n[retrieved context: no dedicated section]"),
                    "Insufficient documentation; parameter filtered out.",
                );
                continue;
            };
            report.sufficient += 1;

            // Binary exclusion (value type parsed from the section text).
            if section.contains("Value type: boolean") {
                report.dropped_binary.push(def.name.to_string());
                backend.charge(
                    &format!("{question}\n{section}"),
                    "Binary parameter representing a user trade-off; excluded.",
                );
                continue;
            }
            report.non_binary += 1;

            // Importance selection from the documented impact statement.
            if !section.contains("primary lever") {
                report.dropped_low_impact.push(def.name.to_string());
                backend.charge(
                    &format!("{question}\n{section}"),
                    "Documented as low-impact; excluded from the tuning set.",
                );
                continue;
            }

            let Some((min, max)) = parse_range(&section) else {
                report.dropped_insufficient.push(def.name.to_string());
                continue;
            };
            let description = parse_description(&section);
            backend.charge(
                &format!("{question}\n{section}"),
                &format!(
                    "{}: {} Valid range parsed; selected for tuning.",
                    def.name, description
                ),
            );
            out.push(ExtractedParam {
                name: def.name.to_string(),
                description,
                min,
                max,
                default: def.default,
                unit: def.unit.to_string(),
            });
        }
        report.selected = out.len();
        (out, report)
    }
}

fn def_min_fallback(def: &pfs::params::ParamDef) -> i64 {
    match &def.min {
        Bound::Const(v) => *v,
        Bound::Expr(_) => 0,
    }
}

fn def_max_fallback(def: &pfs::params::ParamDef) -> i64 {
    match &def.max {
        Bound::Const(v) => *v,
        Bound::Expr(_) => i64::MAX,
    }
}

/// Parse the description: the prose between the header block and the range
/// sentences.
fn parse_description(section: &str) -> String {
    let body_start = section
        .find("Default:")
        .and_then(|p| section[p..].find("\n\n").map(|q| p + q))
        .unwrap_or(0);
    let end = section
        .find("The minimum accepted value")
        .unwrap_or(section.len());
    section[body_start..end]
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parse the min/max sentences into bounds (constant or expression).
fn parse_range(section: &str) -> Option<(Bound, Bound)> {
    let min = parse_bound(section, "The minimum accepted value")?;
    let max = parse_bound(section, "The maximum accepted value")?;
    Some((min, max))
}

fn parse_bound(section: &str, lead: &str) -> Option<Bound> {
    let start = section.find(lead)?;
    let rest = &section[start + lead.len()..];
    if rest.starts_with(" is not fixed") {
        // Expression form: "... computed as `expr` ..."
        let tick = rest.find('`')?;
        let rest2 = &rest[tick + 1..];
        let tick2 = rest2.find('`')?;
        return Some(Bound::Expr(rest2[..tick2].to_string()));
    }
    // Constant form: "is <number>."
    let stripped = rest.strip_prefix(" is ")?;
    let num: String = stripped
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect();
    num.parse::<i64>().ok().map(Bound::Const)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::{ModelProfile, SimLlm};
    use pfs::params::TUNABLE_NAMES;

    fn extractor() -> RagExtractor {
        RagExtractor::standard()
    }

    #[test]
    fn pipeline_selects_exactly_the_13_targets() {
        let ex = extractor();
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let (params, report) = ex.extract(&mut backend);
        let mut names: Vec<&str> = params.iter().map(|p| p.name.as_str()).collect();
        names.sort();
        let mut expected: Vec<&str> = TUNABLE_NAMES.to_vec();
        expected.sort();
        assert_eq!(names, expected, "report: {report:?}");
        assert_eq!(report.selected, 13);
    }

    #[test]
    fn filters_account_for_everything() {
        let ex = extractor();
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let (_, report) = ex.extract(&mut backend);
        assert_eq!(
            report.writable,
            report.dropped_insufficient.len()
                + report.dropped_binary.len()
                + report.dropped_low_impact.len()
                + report.selected
        );
        assert!(report.dropped_binary.iter().any(|n| n == "osc.checksums"));
        assert!(report
            .dropped_low_impact
            .iter()
            .any(|n| n == "ldlm.lru_size"));
        assert!(report
            .dropped_insufficient
            .iter()
            .any(|n| n == "mdc.batch_max"));
    }

    #[test]
    fn dependent_ranges_survive_extraction() {
        let ex = extractor();
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let (params, _) = ex.extract(&mut backend);
        let ra = params
            .iter()
            .find(|p| p.name == "llite.max_read_ahead_per_file_mb")
            .expect("extracted");
        assert_eq!(ra.max, Bound::Expr("llite.max_read_ahead_mb / 2".into()));
        let mod_rpcs = params
            .iter()
            .find(|p| p.name == "mdc.max_mod_rpcs_in_flight")
            .expect("extracted");
        assert!(matches!(mod_rpcs.max, Bound::Expr(_)));
    }

    #[test]
    fn descriptions_are_accurate_prose() {
        let ex = extractor();
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        let (params, _) = ex.extract(&mut backend);
        let sc = params.iter().find(|p| p.name == "stripe_count").unwrap();
        // The correct definition from Fig. 2's contrast: "the number of
        // OSTs across which a file will be striped".
        assert!(
            sc.description.contains("a file will be striped"),
            "{}",
            sc.description
        );
        for p in &params {
            assert!(p.description.len() > 40, "{} too thin", p.name);
        }
    }

    #[test]
    fn grounded_fact_matches_truth() {
        let ex = extractor();
        let fact = ex.grounded_fact("llite.statahead_max").expect("grounded");
        assert!(fact.grounded);
        assert_eq!(fact.min, 0);
        assert_eq!(fact.max, 8192);
    }

    #[test]
    fn undocumented_params_cannot_be_grounded() {
        let ex = extractor();
        assert!(ex.grounded_fact("mdc.batch_max").is_none());
        assert!(ex.grounded_fact("llite.inode_cache").is_none());
    }

    #[test]
    fn extraction_charges_tokens() {
        let ex = extractor();
        let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
        ex.extract(&mut backend);
        use llmsim::LlmBackend as _;
        assert!(backend.usage().calls as usize >= 13);
        assert!(backend.usage().input_tokens > 1000);
    }

    #[test]
    fn parse_bound_forms() {
        assert_eq!(
            parse_bound(
                "The minimum accepted value is 64.",
                "The minimum accepted value"
            ),
            Some(Bound::Const(64))
        );
        assert_eq!(
            parse_bound(
                "The maximum accepted value is not fixed: it is computed as \
                 `memory_mb / 2` from other values.",
                "The maximum accepted value"
            ),
            Some(Bound::Expr("memory_mb / 2".into()))
        );
        assert_eq!(parse_bound("no range here", "The minimum"), None);
    }
}
