//! The synthetic file-system operations manual.
//!
//! Stands in for the 600-page Lustre 2.x Operations Manual the paper indexes.
//! Generated from the parameter registry's ground truth so the manual and the
//! simulator can never drift apart, padded with the general chapters and
//! repetitive operational prose that make retrieval non-trivial: a query
//! about one parameter must find its section among hundreds of chunks of
//! architecture description, installation walkthroughs and unrelated
//! parameter sections.

use pfs::params::{Bound, Coverage, Impact, ParamDef, ParamRegistry};

/// Marker used to delimit a parameter's dedicated section; the sufficiency
/// check looks for it in retrieved context.
pub fn section_marker(name: &str) -> String {
    format!("PARAMETER REFERENCE: {name}")
}

fn render_bound(b: &Bound, which: &str) -> String {
    match b {
        Bound::Const(v) => format!("The {which} accepted value is {v}."),
        Bound::Expr(e) => format!(
            "The {which} accepted value is not fixed: it is computed as \
             `{e}` from the values of other parameters and the node's \
             hardware configuration at the time the parameter is set."
        ),
    }
}

fn impact_sentence(d: &ParamDef) -> &'static str {
    match d.impact {
        Impact::High => {
            "Administrators tuning I/O throughput or latency should treat \
             this parameter as a primary lever: it has a direct and \
             significant effect on I/O performance."
        }
        Impact::Low => {
            "This parameter primarily affects resource accounting or \
             memory footprint; it is not a primary I/O performance lever."
        }
        Impact::None => {
            "This parameter exists for administrative or testing purposes \
             and is not connected to production I/O performance."
        }
    }
}

fn param_section(d: &ParamDef) -> String {
    let mut s = String::with_capacity(1200);
    s.push_str(&format!("## {}\n\n", section_marker(d.name)));
    s.push_str(&format!(
        "Interface path: {} . Writable at runtime: {}. Value type: {}. \
         Default: {}{}.\n\n",
        d.proc_path,
        if d.writable { "yes" } else { "no" },
        match d.kind {
            pfs::params::ParamKind::Int => "integer",
            pfs::params::ParamKind::Bool => "boolean (0 or 1)",
        },
        d.default,
        if d.unit.is_empty() {
            String::new()
        } else {
            format!(" {}", d.unit)
        },
    ));
    s.push_str(d.purpose);
    s.push_str("\n\n");
    if !d.io_effect.is_empty() {
        s.push_str(d.io_effect);
        s.push_str("\n\n");
    }
    s.push_str(&render_bound(&d.min, "minimum"));
    s.push(' ');
    s.push_str(&render_bound(&d.max, "maximum"));
    s.push_str("\n\n");
    s.push_str(impact_sentence(d));
    s.push_str("\n\n");
    s
}

fn general_chapters() -> String {
    let mut s = String::new();
    s.push_str(
        "# Operations Manual for the Parallel File System\n\n\
         ## Chapter 1: Architecture Overview\n\n\
         The file system separates metadata from data. A metadata server (MDS) \
         backed by a metadata target (MDT) owns the namespace: file names, \
         directories, permissions and file layouts. Object storage servers \
         (OSS) export object storage targets (OSTs) that hold file data as \
         objects. Clients mount the file system through a network request \
         processing layer and interact with the MDS through the metadata \
         client (MDC) and with each OST through an object storage client \
         (OSC). A management server (MGS) stores configuration for all nodes. \
         File data is distributed across OSTs by a RAID-0 style striping \
         pattern recorded in the file's layout at creation time. When a \
         client writes a file, the logical file offset determines, through \
         the stripe size and stripe count, which OST object receives each \
         byte range. Parallelism across OSTs is the principal source of \
         aggregate bandwidth.\n\n\
         ## Chapter 2: Networking\n\n\
         All node-to-node communication uses remote procedure calls (RPCs) \
         over the fabric. Small requests are satisfied within a single \
         request/reply exchange; bulk data transfers negotiate a bulk \
         descriptor and move data with zero-copy semantics where supported. \
         Each client bounds the number of concurrent bulk RPCs it keeps in \
         flight to each OST and the number of concurrent metadata RPCs to \
         the MDS; these windows, together with the number of pages packed \
         into each bulk RPC, determine how deeply the data path is \
         pipelined. Requests above the inline threshold pay an additional \
         bulk handshake; very small transfers can be sent inline in the RPC \
         itself, avoiding that handshake entirely.\n\n\
         ## Chapter 3: Client Caching\n\n\
         Clients cache both data and metadata aggressively. Written pages \
         are held dirty in the client page cache and written back \
         asynchronously, aggregated into large, offset-sorted bulk RPCs; \
         writers block only when the dirty limit for an OSC is reached. \
         Sequential readers trigger a readahead state machine that grows a \
         per-file prefetch window; the aggregate volume of readahead in \
         flight is bounded per client. Small files below a configurable \
         threshold are fetched whole on first access. Directory scans \
         benefit from the statahead thread, which detects a process \
         traversing a directory in entry order and prefetches attributes \
         (and, through asynchronous glimpse requests, file sizes from the \
         OSTs) ahead of the application.\n\n\
         ## Chapter 4: Locking\n\n\
         A distributed lock manager (LDLM) provides cache coherency. Data \
         extents are protected by extent locks granted per OST object; when \
         two clients write overlapping or adjacent regions of a shared \
         file, lock revocations force the holder to flush and release, \
         which serialises conflicting writers. Metadata operations take \
         inode bit locks granted by the MDS.\n\n\
         ## Chapter 5: Installation and Formatting\n\n\
         Targets are formatted with the backing file system of choice and \
         registered with the MGS. The mount point and the backing block \
         size are chosen at format time and cannot be altered at runtime. \
         Service thread counts for the MDS and OSS pools are sized at \
         service start according to the node's core count. After mounting, \
         runtime parameters are inspected and modified through the \
         parameter interface exposed under /proc and /sys; a parameter is \
         writable only if its interface file is writable. Changes take \
         effect immediately but are not persistent across remounts unless \
         recorded in the configuration log.\n\n\
         ## Chapter 6: Monitoring and Telemetry\n\n\
         Per-target statistics files expose operation counts, latency \
         histograms and bulk I/O size distributions. These files are \
         read-only; they are reset by writing zero to the corresponding \
         clear file. Administrators should sample statistics before and \
         after a tuning change and compare distributions rather than \
         averages. The brw_stats histogram on each OST is the fastest way \
         to verify whether bulk RPCs arrive at the intended size: a tuning \
         change to the pages-per-RPC limit should visibly shift the \
         distribution's mode.\n\n",
    );
    // Operational filler: realistic troubleshooting/recovery prose that acts
    // as retrieval distractor mass.
    for (i, topic) in [
        "recovery and failover",
        "quota enforcement",
        "changelog consumers",
        "backup of metadata targets",
        "network tuning for mixed fabrics",
        "upgrade procedures between minor releases",
        "security flavors and identity mapping",
        "space balancing between OSTs",
        "diagnosing slow clients",
        "kernel memory pressure on routers",
    ]
    .iter()
    .enumerate()
    {
        s.push_str(&format!(
            "## Chapter {}: Notes on {topic}\n\n\
             This chapter collects operational guidance on {topic}. The \
             procedures below assume an otherwise healthy cluster and a \
             maintenance window. Begin by capturing the current \
             configuration with the parameter listing tool so the state \
             can be restored. Proceed target by target, verifying after \
             each step that clients reconnect and that no stale exports \
             remain. Where the guidance interacts with runtime parameters, \
             the relevant parameter reference sections elsewhere in this \
             manual are authoritative; this chapter intentionally does not \
             restate accepted value ranges. Common pitfalls include \
             applying changes on only a subset of nodes, neglecting to \
             record changes in the configuration log, and interpreting \
             transient reconnection messages as failures. {}\n\n",
            7 + i,
            "Operators are reminded that performance conclusions require \
             repeated measurements under controlled load."
                .repeat(2),
        ));
    }
    s
}

/// Generate the full manual text for a registry.
pub fn generate_manual(registry: &ParamRegistry) -> String {
    let mut s = general_chapters();
    s.push_str("# Part II: Parameter Reference\n\n");
    for d in registry.all() {
        match d.coverage {
            Coverage::Full => s.push_str(&param_section(d)),
            Coverage::Sparse => {
                // A passing mention without definition or range — enough to
                // be retrieved, not enough to pass the sufficiency check.
                s.push_str(&format!(
                    "Note: the interface also exposes {} at {} for internal \
                     use; consult support before modifying it.\n\n",
                    d.name, d.proc_path
                ));
            }
            Coverage::Absent => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfs::params::ParamRegistry;

    #[test]
    fn manual_is_substantial() {
        let m = generate_manual(&ParamRegistry::standard());
        let words = m.split_whitespace().count();
        assert!(words > 4000, "manual too small: {words} words");
    }

    #[test]
    fn fully_documented_params_have_sections() {
        let reg = ParamRegistry::standard();
        let m = generate_manual(&reg);
        for d in reg.all() {
            match d.coverage {
                Coverage::Full => assert!(
                    m.contains(&section_marker(d.name)),
                    "missing section for {}",
                    d.name
                ),
                Coverage::Sparse => {
                    assert!(!m.contains(&section_marker(d.name)));
                    assert!(m.contains(d.name), "sparse mention missing: {}", d.name);
                }
                Coverage::Absent => {
                    assert!(!m.contains(d.name), "absent param leaked: {}", d.name)
                }
            }
        }
    }

    #[test]
    fn dependent_ranges_described_as_computed() {
        let reg = ParamRegistry::standard();
        let m = generate_manual(&reg);
        assert!(m.contains("llite.max_read_ahead_mb / 2"));
        assert!(m.contains("memory_mb / 2"));
    }

    #[test]
    fn impact_marked_for_targets() {
        let reg = ParamRegistry::standard();
        let m = generate_manual(&reg);
        // Count of "primary lever" phrases >= number of high-impact documented params.
        let hits = m.matches("primary lever").count();
        let high = reg
            .all()
            .iter()
            .filter(|d| d.impact == Impact::High && d.coverage == Coverage::Full)
            .count();
        assert!(hits >= high, "{hits} < {high}");
    }
}
