//! Token-window chunking (LlamaIndex defaults: 1024-token chunks, 20-token
//! overlap — §4.2.2).

/// Default chunk size in tokens.
pub const CHUNK_TOKENS: usize = 1024;
/// Default overlap in tokens.
pub const CHUNK_OVERLAP: usize = 20;

/// Split `text` into whitespace tokens ("words"); the token estimate used
/// throughout treats one word ≈ one token, which is close enough for a
/// retrieval simulation.
pub fn words(text: &str) -> Vec<&str> {
    text.split_whitespace().collect()
}

/// Chunk `text` into windows of `size` tokens with `overlap` tokens of
/// context carried between consecutive chunks.
pub fn chunk_text(text: &str, size: usize, overlap: usize) -> Vec<String> {
    assert!(size > 0, "chunk size must be positive");
    assert!(overlap < size, "overlap must be smaller than chunk size");
    let w = words(text);
    if w.is_empty() {
        return Vec::new();
    }
    let step = size - overlap;
    let mut chunks = Vec::with_capacity(w.len() / step + 1);
    let mut start = 0;
    loop {
        let end = (start + size).min(w.len());
        chunks.push(w[start..end].join(" "));
        if end == w.len() {
            break;
        }
        start += step;
    }
    chunks
}

/// Chunk with the LlamaIndex defaults.
pub fn chunk_default(text: &str) -> Vec<String> {
    chunk_text(text, CHUNK_TOKENS, CHUNK_OVERLAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_no_chunks() {
        assert!(chunk_default("").is_empty());
        assert!(chunk_default("   \n  ").is_empty());
    }

    #[test]
    fn short_text_single_chunk() {
        let chunks = chunk_default("hello world");
        assert_eq!(chunks, vec!["hello world".to_string()]);
    }

    #[test]
    fn chunks_overlap() {
        let text: Vec<String> = (0..25).map(|i| format!("w{i}")).collect();
        let text = text.join(" ");
        let chunks = chunk_text(&text, 10, 2);
        // step 8: [0..10), [8..18), [16..25)
        assert_eq!(chunks.len(), 3);
        assert!(chunks[0].ends_with("w8 w9"));
        assert!(chunks[1].starts_with("w8 w9"));
        assert!(chunks[1].ends_with("w16 w17"));
        assert!(chunks[2].starts_with("w16 w17"));
    }

    #[test]
    fn every_word_appears() {
        let text: Vec<String> = (0..5000).map(|i| format!("tok{i}")).collect();
        let text = text.join(" ");
        let chunks = chunk_default(&text);
        assert!(chunks.len() > 1);
        let joined = chunks.join(" ");
        for i in (0..5000).step_by(617) {
            assert!(joined.contains(&format!("tok{i}")));
        }
    }

    #[test]
    #[should_panic(expected = "overlap must be smaller")]
    fn bad_overlap_panics() {
        chunk_text("a b c", 2, 2);
    }
}
