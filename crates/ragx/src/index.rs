//! Brute-force cosine vector index over manual chunks.

use crate::embed::{cosine, Embedder};
use rayon::prelude::*;

/// A queryable vector index (the paper's LlamaIndex vector store).
#[derive(Debug, Clone)]
pub struct VectorIndex {
    chunks: Vec<String>,
    vectors: Vec<Vec<f32>>,
    embedder: Embedder,
}

impl VectorIndex {
    /// Build an index from pre-chunked text (embedding in parallel).
    pub fn build(chunks: Vec<String>) -> Self {
        let embedder = Embedder;
        let vectors: Vec<Vec<f32>> = chunks.par_iter().map(|c| embedder.embed(c)).collect();
        VectorIndex {
            chunks,
            vectors,
            embedder,
        }
    }

    /// Top-`k` chunks by cosine similarity to `query`, best first.
    pub fn query(&self, query: &str, k: usize) -> Vec<(f32, &str)> {
        let qv = self.embedder.embed(query);
        let mut scored: Vec<(f32, usize)> = self
            .vectors
            .par_iter()
            .enumerate()
            .map(|(i, v)| (cosine(&qv, v), i))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored
            .into_iter()
            .take(k)
            .map(|(s, i)| (s, self.chunks[i].as_str()))
            .collect()
    }

    /// Number of chunks in the index.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> VectorIndex {
        VectorIndex::build(vec![
            "stripe_count determines the number of OSTs a file is striped \
             across; wide striping aggregates bandwidth"
                .to_string(),
            "max_dirty_mb bounds the dirty page cache each OSC may hold \
             before writers block on writeback"
                .to_string(),
            "the metadata server processes create unlink and getattr \
             requests from metadata clients"
                .to_string(),
            "statahead_max limits how many directory entries the statahead \
             thread prefetches"
                .to_string(),
        ])
    }

    #[test]
    fn retrieves_relevant_chunk_first() {
        let idx = index();
        let hits = idx.query("How do I use the parameter statahead_max?", 2);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].1.contains("statahead_max"), "got: {}", hits[0].1);
        assert!(hits[0].0 >= hits[1].0);
    }

    #[test]
    fn k_larger_than_index_returns_all() {
        let idx = index();
        assert_eq!(idx.query("anything", 100).len(), 4);
    }

    #[test]
    fn empty_index() {
        let idx = VectorIndex::build(vec![]);
        assert!(idx.is_empty());
        assert!(idx.query("q", 5).is_empty());
    }

    #[test]
    fn deterministic_ordering_on_ties() {
        let idx = VectorIndex::build(vec!["same text".into(), "same text".into()]);
        let a = idx.query("same text", 2);
        let b = idx.query("same text", 2);
        assert_eq!(
            a.iter().map(|(s, c)| (*s, *c)).collect::<Vec<_>>(),
            b.iter().map(|(s, c)| (*s, *c)).collect::<Vec<_>>()
        );
    }
}
