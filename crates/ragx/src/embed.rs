//! Feature-hashing n-gram embedder — the offline stand-in for
//! `text-embedding-3-large`.
//!
//! Each text maps to a fixed-dimension vector: unigrams and bigrams of
//! lowercased words are hashed into buckets with signed contributions
//! (the classic hashing trick), then L2-normalised so the index can rank by
//! dot product = cosine similarity. Lexically similar passages land close,
//! which is the property the extraction pipeline actually relies on.

use simcore::rng::{combine, stable_hash};

/// Embedding dimensionality.
pub const EMBED_DIM: usize = 384;

/// Deterministic text embedder.
#[derive(Debug, Clone, Default)]
pub struct Embedder;

impl Embedder {
    /// Embed `text` into a unit-norm vector (zero vector for empty text).
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0f32; EMBED_DIM];
        let words: Vec<String> = text
            .split(|c: char| !c.is_alphanumeric() && c != '_' && c != '.')
            .filter(|w| !w.is_empty())
            .map(|w| w.to_lowercase())
            .collect();
        for w in &words {
            add_feature(&mut v, stable_hash(w), 1.0);
        }
        for pair in words.windows(2) {
            let h = combine(stable_hash(&pair[0]), stable_hash(&pair[1]));
            add_feature(&mut v, h, 0.5);
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }
}

fn add_feature(v: &mut [f32], hash: u64, weight: f32) {
    let bucket = (hash % EMBED_DIM as u64) as usize;
    let sign = if (hash >> 32) & 1 == 0 { 1.0 } else { -1.0 };
    v[bucket] += sign * weight;
}

/// Cosine similarity of two unit vectors (plain dot product).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e() -> Embedder {
        Embedder
    }

    #[test]
    fn unit_norm() {
        let v = e().embed("the stripe count parameter controls striping");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_is_zero() {
        let v = e().embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic() {
        let a = e().embed("max_rpcs_in_flight tuning");
        let b = e().embed("max_rpcs_in_flight tuning");
        assert_eq!(a, b);
    }

    #[test]
    fn similar_texts_closer_than_dissimilar() {
        let q = e().embed("How do I use the parameter llite.statahead_max?");
        let on_topic = e().embed(
            "llite.statahead_max controls the number of directory entries the \
             statahead thread prefetches during directory scans",
        );
        let off_topic = e().embed(
            "the object storage server allocates grant space to clients for \
             writeback caching of bulk data",
        );
        assert!(cosine(&q, &on_topic) > cosine(&q, &off_topic));
    }

    #[test]
    fn case_insensitive() {
        let a = e().embed("Stripe Count");
        let b = e().embed("stripe count");
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn dotted_names_survive_tokenization() {
        let a = e().embed("osc.max_dirty_mb");
        let b = e().embed("unrelated words entirely");
        assert!(cosine(&a, &a) > 0.99);
        assert!(cosine(&a, &b) < 0.5);
    }
}
