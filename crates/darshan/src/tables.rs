//! DataFrame-style tables: the Analysis Agent's working representation.
//!
//! §4.1: "This initial run generates a Darshan log, which is further
//! processed into a set of pandas DataFrames, accompanied by a separate file
//! describing the meaning of each column." [`to_tables`] is that
//! preprocessing script; [`Table`] supports the aggregation operations the
//! code-executing Analysis Agent performs.

use crate::counters::{COUNTERS, FCOUNTERS};
use crate::log::DarshanLog;
use pfs::ops::Module;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A rectangular numeric table with named columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table name (e.g. "POSIX").
    pub name: String,
    /// Column names, in order.
    pub columns: Vec<String>,
    /// Row-major data.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Values of one column.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.col(name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Sum of a column (0 if the column is missing).
    pub fn sum(&self, name: &str) -> f64 {
        self.column(name).map(|v| v.iter().sum()).unwrap_or(0.0)
    }

    /// Mean of a column (0 if missing or empty).
    pub fn mean(&self, name: &str) -> f64 {
        match self.column(name) {
            Some(v) if !v.is_empty() => v.iter().sum::<f64>() / v.len() as f64,
            _ => 0.0,
        }
    }

    /// Maximum of a column (0 if missing or empty).
    pub fn max(&self, name: &str) -> f64 {
        self.column(name)
            .map(|v| v.into_iter().fold(0.0_f64, f64::max))
            .unwrap_or(0.0)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct values of a column, sorted.
    pub fn distinct(&self, name: &str) -> Vec<f64> {
        let mut v = self.column(name).unwrap_or_default();
        v.sort_by(|a, b| a.total_cmp(b));
        v.dedup();
        v
    }

    /// Group by a key column and sum a value column: `(key, sum)` pairs.
    pub fn group_sum(&self, key: &str, value: &str) -> Vec<(f64, f64)> {
        let (Some(ki), Some(vi)) = (self.col(key), self.col(value)) else {
            return Vec::new();
        };
        let mut acc: BTreeMap<u64, f64> = BTreeMap::new();
        for row in &self.rows {
            // Keys are ids/ranks: exact integers stored as f64.
            *acc.entry(row[ki].to_bits()).or_default() += row[vi];
        }
        let mut out: Vec<(f64, f64)> = acc
            .into_iter()
            .map(|(k, v)| (f64::from_bits(k), v))
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }
}

/// Column descriptions — the "separate file describing the meaning of each
/// column" shipped with the dataframes.
pub fn column_descriptions() -> BTreeMap<String, String> {
    let mut m = BTreeMap::new();
    m.insert("RANK".to_string(), "MPI rank issuing the I/O".to_string());
    m.insert(
        "FILE_ID".to_string(),
        "Darshan record id of the file".to_string(),
    );
    for c in COUNTERS {
        m.insert(c.name().to_string(), c.describe().to_string());
    }
    for c in FCOUNTERS {
        m.insert(c.name().to_string(), c.describe().to_string());
    }
    m
}

/// Convert a log into one table per module present, plus the header string.
pub fn to_tables(log: &DarshanLog) -> (String, Vec<Table>) {
    let mut tables = Vec::new();
    for module in [Module::Posix, Module::MpiIo, Module::Stdio] {
        let records: Vec<_> = log.module_records(module).collect();
        if records.is_empty() {
            continue;
        }
        let mut columns = vec!["RANK".to_string(), "FILE_ID".to_string()];
        columns.extend(COUNTERS.iter().map(|c| c.name().to_string()));
        columns.extend(FCOUNTERS.iter().map(|c| c.name().to_string()));
        let rows = records
            .iter()
            .map(|r| {
                let mut row = Vec::with_capacity(columns.len());
                row.push(r.rank as f64);
                row.push(r.file.0 as f64);
                row.extend(r.counters.iter().map(|&v| v as f64));
                row.extend(r.fcounters.iter().copied());
                row
            })
            .collect();
        tables.push(Table {
            name: module.name().to_string(),
            columns,
            rows,
        });
    }
    (log.header.render(), tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{Counter, FCounter};
    use crate::log::{FileRecord, JobHeader};
    use pfs::ops::FileId;

    fn sample_log() -> DarshanLog {
        let mut a = FileRecord::new(0, FileId(1), Module::Posix);
        a.bump(Counter::Writes, 10);
        a.bump(Counter::BytesWritten, 1000);
        a.fadd(FCounter::WriteTime, 0.5);
        let mut b = FileRecord::new(1, FileId(1), Module::Posix);
        b.bump(Counter::Writes, 30);
        b.bump(Counter::BytesWritten, 3000);
        let mut c = FileRecord::new(0, FileId(2), Module::MpiIo);
        c.bump(Counter::Reads, 5);
        DarshanLog {
            header: JobHeader {
                exe: "x".into(),
                nprocs: 2,
                runtime_secs: 1.0,
                file_count: 2,
            },
            records: vec![a, b, c],
        }
    }

    #[test]
    fn tables_split_by_module() {
        let (header, tables) = to_tables(&sample_log());
        assert!(header.contains("nprocs: 2"));
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].name, "POSIX");
        assert_eq!(tables[0].len(), 2);
        assert_eq!(tables[1].name, "MPI-IO");
        assert_eq!(tables[1].len(), 1);
    }

    #[test]
    fn table_aggregations() {
        let (_, tables) = to_tables(&sample_log());
        let posix = &tables[0];
        assert_eq!(posix.sum("BYTES_WRITTEN"), 4000.0);
        assert_eq!(posix.mean("WRITES"), 20.0);
        assert_eq!(posix.max("WRITES"), 30.0);
        assert_eq!(posix.sum("NO_SUCH_COLUMN"), 0.0);
        assert_eq!(posix.distinct("FILE_ID"), vec![1.0]);
    }

    #[test]
    fn group_sum_by_rank() {
        let (_, tables) = to_tables(&sample_log());
        let posix = &tables[0];
        let per_rank = posix.group_sum("RANK", "BYTES_WRITTEN");
        assert_eq!(per_rank, vec![(0.0, 1000.0), (1.0, 3000.0)]);
    }

    #[test]
    fn nan_values_order_deterministically_without_panicking() {
        // Regression: `sort_by(partial_cmp().unwrap())` panicked on NaN;
        // total_cmp orders it after every finite value instead.
        let t = Table {
            name: "T".into(),
            columns: vec!["K".into(), "V".into()],
            rows: vec![vec![f64::NAN, 1.0], vec![2.0, f64::NAN], vec![1.0, 3.0]],
        };
        let d = t.distinct("K");
        assert_eq!(&d[..2], &[1.0, 2.0]);
        assert!(d[2].is_nan(), "NaN sorts last under the total order");
        let g = t.group_sum("K", "V");
        assert_eq!((g[0].0, g[1].0), (1.0, 2.0));
        assert!(g[2].0.is_nan());
        assert!(
            g[1].1.is_nan(),
            "NaN sums stay NaN, keyed deterministically"
        );
    }

    #[test]
    fn descriptions_cover_all_columns() {
        let (_, tables) = to_tables(&sample_log());
        let desc = column_descriptions();
        for col in &tables[0].columns {
            assert!(desc.contains_key(col), "undocumented column {col}");
        }
    }

    #[test]
    fn empty_modules_omitted() {
        let (_, tables) = to_tables(&sample_log());
        assert!(tables.iter().all(|t| t.name != "STDIO"));
    }
}
