//! The counter vocabulary: a faithful subset of Darshan's POSIX/MPI-IO
//! counter sets (integer counters and floating-point timing counters).

use serde::{Deserialize, Serialize};

/// Integer counters, mirroring Darshan's `<MODULE>_<NAME>` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs, non_camel_case_types)]
#[allow(clippy::enum_variant_names)]
pub enum Counter {
    Opens,
    Reads,
    Writes,
    Stats,
    Fsyncs,
    Unlinks,
    BytesRead,
    BytesWritten,
    MaxByteRead,
    MaxByteWritten,
    ConsecReads,
    ConsecWrites,
    SeqReads,
    SeqWrites,
    RwSwitches,
    SizeRead0_100,
    SizeRead100_1K,
    SizeRead1K_10K,
    SizeRead10K_100K,
    SizeRead100K_1M,
    SizeRead1M_4M,
    SizeRead4M_10M,
    SizeRead10M_100M,
    SizeRead100M_1G,
    SizeRead1G_Plus,
    SizeWrite0_100,
    SizeWrite100_1K,
    SizeWrite1K_10K,
    SizeWrite10K_100K,
    SizeWrite100K_1M,
    SizeWrite1M_4M,
    SizeWrite4M_10M,
    SizeWrite10M_100M,
    SizeWrite100M_1G,
    SizeWrite1G_Plus,
}

/// Floating-point (timing) counters, mirroring Darshan's `F_` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FCounter {
    OpenStartTimestamp,
    CloseEndTimestamp,
    ReadTime,
    WriteTime,
    MetaTime,
    MaxReadTime,
    MaxWriteTime,
    /// Variance of per-rank total I/O time on a shared file (reduction step).
    VarianceRankTime,
    /// Variance of per-rank total bytes on a shared file (reduction step).
    VarianceRankBytes,
}

/// All integer counters, in storage order.
pub const COUNTERS: [Counter; 35] = [
    Counter::Opens,
    Counter::Reads,
    Counter::Writes,
    Counter::Stats,
    Counter::Fsyncs,
    Counter::Unlinks,
    Counter::BytesRead,
    Counter::BytesWritten,
    Counter::MaxByteRead,
    Counter::MaxByteWritten,
    Counter::ConsecReads,
    Counter::ConsecWrites,
    Counter::SeqReads,
    Counter::SeqWrites,
    Counter::RwSwitches,
    Counter::SizeRead0_100,
    Counter::SizeRead100_1K,
    Counter::SizeRead1K_10K,
    Counter::SizeRead10K_100K,
    Counter::SizeRead100K_1M,
    Counter::SizeRead1M_4M,
    Counter::SizeRead4M_10M,
    Counter::SizeRead10M_100M,
    Counter::SizeRead100M_1G,
    Counter::SizeRead1G_Plus,
    Counter::SizeWrite0_100,
    Counter::SizeWrite100_1K,
    Counter::SizeWrite1K_10K,
    Counter::SizeWrite10K_100K,
    Counter::SizeWrite100K_1M,
    Counter::SizeWrite1M_4M,
    Counter::SizeWrite4M_10M,
    Counter::SizeWrite10M_100M,
    Counter::SizeWrite100M_1G,
    Counter::SizeWrite1G_Plus,
];

/// All floating-point counters, in storage order.
pub const FCOUNTERS: [FCounter; 9] = [
    FCounter::OpenStartTimestamp,
    FCounter::CloseEndTimestamp,
    FCounter::ReadTime,
    FCounter::WriteTime,
    FCounter::MetaTime,
    FCounter::MaxReadTime,
    FCounter::MaxWriteTime,
    FCounter::VarianceRankTime,
    FCounter::VarianceRankBytes,
];

impl Counter {
    /// Storage index.
    pub fn index(self) -> usize {
        COUNTERS.iter().position(|&c| c == self).expect("in table")
    }

    /// Darshan-style column name (module prefix added by the table builder).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Opens => "OPENS",
            Counter::Reads => "READS",
            Counter::Writes => "WRITES",
            Counter::Stats => "STATS",
            Counter::Fsyncs => "FSYNCS",
            Counter::Unlinks => "UNLINKS",
            Counter::BytesRead => "BYTES_READ",
            Counter::BytesWritten => "BYTES_WRITTEN",
            Counter::MaxByteRead => "MAX_BYTE_READ",
            Counter::MaxByteWritten => "MAX_BYTE_WRITTEN",
            Counter::ConsecReads => "CONSEC_READS",
            Counter::ConsecWrites => "CONSEC_WRITES",
            Counter::SeqReads => "SEQ_READS",
            Counter::SeqWrites => "SEQ_WRITES",
            Counter::RwSwitches => "RW_SWITCHES",
            Counter::SizeRead0_100 => "SIZE_READ_0_100",
            Counter::SizeRead100_1K => "SIZE_READ_100_1K",
            Counter::SizeRead1K_10K => "SIZE_READ_1K_10K",
            Counter::SizeRead10K_100K => "SIZE_READ_10K_100K",
            Counter::SizeRead100K_1M => "SIZE_READ_100K_1M",
            Counter::SizeRead1M_4M => "SIZE_READ_1M_4M",
            Counter::SizeRead4M_10M => "SIZE_READ_4M_10M",
            Counter::SizeRead10M_100M => "SIZE_READ_10M_100M",
            Counter::SizeRead100M_1G => "SIZE_READ_100M_1G",
            Counter::SizeRead1G_Plus => "SIZE_READ_1G_PLUS",
            Counter::SizeWrite0_100 => "SIZE_WRITE_0_100",
            Counter::SizeWrite100_1K => "SIZE_WRITE_100_1K",
            Counter::SizeWrite1K_10K => "SIZE_WRITE_1K_10K",
            Counter::SizeWrite10K_100K => "SIZE_WRITE_10K_100K",
            Counter::SizeWrite100K_1M => "SIZE_WRITE_100K_1M",
            Counter::SizeWrite1M_4M => "SIZE_WRITE_1M_4M",
            Counter::SizeWrite4M_10M => "SIZE_WRITE_4M_10M",
            Counter::SizeWrite10M_100M => "SIZE_WRITE_10M_100M",
            Counter::SizeWrite100M_1G => "SIZE_WRITE_100M_1G",
            Counter::SizeWrite1G_Plus => "SIZE_WRITE_1G_PLUS",
        }
    }

    /// Human description (the "column description file" content).
    pub fn describe(self) -> &'static str {
        match self {
            Counter::Opens => "Count of open/create calls on the file",
            Counter::Reads => "Count of read calls",
            Counter::Writes => "Count of write calls",
            Counter::Stats => "Count of stat/getattr calls",
            Counter::Fsyncs => "Count of fsync calls",
            Counter::Unlinks => "Count of unlink calls",
            Counter::BytesRead => "Total bytes read",
            Counter::BytesWritten => "Total bytes written",
            Counter::MaxByteRead => "Highest byte offset read",
            Counter::MaxByteWritten => "Highest byte offset written",
            Counter::ConsecReads => "Reads immediately following the previous read's end offset",
            Counter::ConsecWrites => "Writes immediately following the previous write's end offset",
            Counter::SeqReads => "Reads at an offset >= the previous read's end offset",
            Counter::SeqWrites => "Writes at an offset >= the previous write's end offset",
            Counter::RwSwitches => "Alternations between read and write on the file",
            Counter::SizeRead0_100 => "Reads of 0-100 bytes",
            Counter::SizeRead100_1K => "Reads of 100 B - 1 KiB",
            Counter::SizeRead1K_10K => "Reads of 1-10 KiB",
            Counter::SizeRead10K_100K => "Reads of 10-100 KiB",
            Counter::SizeRead100K_1M => "Reads of 100 KiB - 1 MiB",
            Counter::SizeRead1M_4M => "Reads of 1-4 MiB",
            Counter::SizeRead4M_10M => "Reads of 4-10 MiB",
            Counter::SizeRead10M_100M => "Reads of 10-100 MiB",
            Counter::SizeRead100M_1G => "Reads of 100 MiB - 1 GiB",
            Counter::SizeRead1G_Plus => "Reads above 1 GiB",
            Counter::SizeWrite0_100 => "Writes of 0-100 bytes",
            Counter::SizeWrite100_1K => "Writes of 100 B - 1 KiB",
            Counter::SizeWrite1K_10K => "Writes of 1-10 KiB",
            Counter::SizeWrite10K_100K => "Writes of 10-100 KiB",
            Counter::SizeWrite100K_1M => "Writes of 100 KiB - 1 MiB",
            Counter::SizeWrite1M_4M => "Writes of 1-4 MiB",
            Counter::SizeWrite4M_10M => "Writes of 4-10 MiB",
            Counter::SizeWrite10M_100M => "Writes of 10-100 MiB",
            Counter::SizeWrite100M_1G => "Writes of 100 MiB - 1 GiB",
            Counter::SizeWrite1G_Plus => "Writes above 1 GiB",
        }
    }
}

impl FCounter {
    /// Storage index.
    pub fn index(self) -> usize {
        FCOUNTERS.iter().position(|&c| c == self).expect("in table")
    }

    /// Darshan-style column name.
    pub fn name(self) -> &'static str {
        match self {
            FCounter::OpenStartTimestamp => "F_OPEN_START_TIMESTAMP",
            FCounter::CloseEndTimestamp => "F_CLOSE_END_TIMESTAMP",
            FCounter::ReadTime => "F_READ_TIME",
            FCounter::WriteTime => "F_WRITE_TIME",
            FCounter::MetaTime => "F_META_TIME",
            FCounter::MaxReadTime => "F_MAX_READ_TIME",
            FCounter::MaxWriteTime => "F_MAX_WRITE_TIME",
            FCounter::VarianceRankTime => "F_VARIANCE_RANK_TIME",
            FCounter::VarianceRankBytes => "F_VARIANCE_RANK_BYTES",
        }
    }

    /// Human description.
    pub fn describe(self) -> &'static str {
        match self {
            FCounter::OpenStartTimestamp => "Seconds from job start to first open",
            FCounter::CloseEndTimestamp => "Seconds from job start to last close",
            FCounter::ReadTime => "Cumulative seconds spent in reads",
            FCounter::WriteTime => "Cumulative seconds spent in writes",
            FCounter::MetaTime => "Cumulative seconds spent in metadata calls",
            FCounter::MaxReadTime => "Duration of the slowest single read",
            FCounter::MaxWriteTime => "Duration of the slowest single write",
            FCounter::VarianceRankTime => {
                "Variance of total I/O time across ranks sharing the file"
            }
            FCounter::VarianceRankBytes => {
                "Variance of total bytes moved across ranks sharing the file"
            }
        }
    }
}

/// The size-histogram bucket (read side) for a transfer of `bytes`.
pub fn read_size_bucket(bytes: u64) -> Counter {
    match bytes {
        0..=100 => Counter::SizeRead0_100,
        101..=1024 => Counter::SizeRead100_1K,
        1025..=10240 => Counter::SizeRead1K_10K,
        10241..=102_400 => Counter::SizeRead10K_100K,
        102_401..=1_048_576 => Counter::SizeRead100K_1M,
        1_048_577..=4_194_304 => Counter::SizeRead1M_4M,
        4_194_305..=10_485_760 => Counter::SizeRead4M_10M,
        10_485_761..=104_857_600 => Counter::SizeRead10M_100M,
        104_857_601..=1_073_741_824 => Counter::SizeRead100M_1G,
        _ => Counter::SizeRead1G_Plus,
    }
}

/// The size-histogram bucket (write side) for a transfer of `bytes`.
pub fn write_size_bucket(bytes: u64) -> Counter {
    match bytes {
        0..=100 => Counter::SizeWrite0_100,
        101..=1024 => Counter::SizeWrite100_1K,
        1025..=10240 => Counter::SizeWrite1K_10K,
        10241..=102_400 => Counter::SizeWrite10K_100K,
        102_401..=1_048_576 => Counter::SizeWrite100K_1M,
        1_048_577..=4_194_304 => Counter::SizeWrite1M_4M,
        4_194_305..=10_485_760 => Counter::SizeWrite4M_10M,
        10_485_761..=104_857_600 => Counter::SizeWrite10M_100M,
        104_857_601..=1_073_741_824 => Counter::SizeWrite100M_1G,
        _ => Counter::SizeWrite1G_Plus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, c) in COUNTERS.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, c) in FCOUNTERS.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = COUNTERS.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), COUNTERS.len());
    }

    #[test]
    fn size_buckets() {
        assert_eq!(read_size_bucket(0), Counter::SizeRead0_100);
        assert_eq!(read_size_bucket(100), Counter::SizeRead0_100);
        assert_eq!(read_size_bucket(101), Counter::SizeRead100_1K);
        assert_eq!(read_size_bucket(2048), Counter::SizeRead1K_10K);
        assert_eq!(read_size_bucket(65536), Counter::SizeRead10K_100K);
        assert_eq!(read_size_bucket(1 << 20), Counter::SizeRead100K_1M);
        assert_eq!(read_size_bucket(16 << 20), Counter::SizeRead10M_100M);
        assert_eq!(read_size_bucket(2 << 30), Counter::SizeRead1G_Plus);
        assert_eq!(write_size_bucket(65536), Counter::SizeWrite10K_100K);
        assert_eq!(write_size_bucket(16 << 20), Counter::SizeWrite10M_100M);
    }

    #[test]
    fn every_counter_described() {
        for c in COUNTERS {
            assert!(!c.describe().is_empty());
            assert!(!c.name().is_empty());
        }
        for c in FCOUNTERS {
            assert!(!c.describe().is_empty());
        }
    }
}
