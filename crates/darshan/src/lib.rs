//! # darshan — Darshan-compatible I/O characterization
//!
//! The paper's pipeline (§4.1) is: run the application once under Darshan,
//! then preprocess the log into *pandas DataFrames plus a column-description
//! file* that the Analysis Agent consumes. This crate reproduces that
//! pipeline against the simulator:
//!
//! * [`collector::Collector`] implements [`pfs::trace::TraceSink`] and
//!   accumulates the counters Darshan's runtime library would (reads, writes,
//!   bytes, sequential/consecutive access detection, per-op timing, size
//!   histograms) per `(rank, file, module)`;
//! * [`log::DarshanLog`] is the finished log: a job header plus one record
//!   per (rank, file, module), with shared-file variance counters computed at
//!   finalisation exactly as Darshan's reduction step does;
//! * [`tables`] converts a log into [`tables::Table`]s — one per module —
//!   with a descriptive string per column (the "separate file describing the
//!   meaning of each column").

#![forbid(unsafe_code)]

pub mod collector;
pub mod counters;
pub mod log;
pub mod tables;

pub use collector::Collector;
pub use counters::{Counter, FCounter};
pub use log::{DarshanLog, FileRecord, JobHeader};
pub use tables::{column_descriptions, Table};
