//! Runtime collector: turns the simulator's operation records into Darshan
//! counters, exactly as `libdarshan` instruments an application.

use crate::counters::{read_size_bucket, write_size_bucket, Counter, FCounter};
use crate::log::{DarshanLog, FileRecord, JobHeader};
use pfs::ops::{FileId, Module};
use pfs::trace::{OpClass, OpRecord, TraceSink};
use std::collections::HashMap;

/// Accumulating trace sink. Use [`Collector::finish`] to obtain the log.
#[derive(Debug)]
pub struct Collector {
    exe: String,
    nprocs: u32,
    // determinism audit (D002): accumulated by point lookups; `finish`
    // drains into a Vec and sorts by (module, file, rank) before the
    // records can reach a log or report
    records: HashMap<(u32, FileId, Module), FileRecord>,
    last_end: f64,
}

impl Collector {
    /// Create a collector for a job with `nprocs` ranks.
    pub fn new(exe: impl Into<String>, nprocs: u32) -> Self {
        Collector {
            exe: exe.into(),
            nprocs,
            records: HashMap::new(),
            last_end: 0.0,
        }
    }

    fn entry(&mut self, rank: u32, file: FileId, module: Module) -> &mut FileRecord {
        self.records
            .entry((rank, file, module))
            .or_insert_with(|| FileRecord::new(rank, file, module))
    }

    /// Finalise: sort records, run the shared-file variance reduction, and
    /// return the completed log.
    pub fn finish(self) -> DarshanLog {
        let mut records: Vec<FileRecord> = self.records.into_values().collect();
        records.sort_by_key(|r| (r.module.name(), r.file, r.rank));
        let mut files: Vec<FileId> = records.iter().map(|r| r.file).collect();
        files.sort();
        files.dedup();
        let mut log = DarshanLog {
            header: JobHeader {
                exe: self.exe,
                nprocs: self.nprocs,
                runtime_secs: self.last_end,
                file_count: files.len() as u64,
            },
            records,
        };
        log.compute_shared_file_variance();
        log
    }
}

impl TraceSink for Collector {
    fn record(&mut self, rec: &OpRecord) {
        let end_secs = rec.end.as_secs_f64();
        if end_secs > self.last_end {
            self.last_end = end_secs;
        }
        let Some(file) = rec.file else {
            return; // pure directory ops are not per-file records
        };
        let duration = (rec.end - rec.start).as_secs_f64();
        let r = self.entry(rec.rank, file, rec.module);
        match rec.class {
            OpClass::Read => {
                r.bump(Counter::Reads, 1);
                r.bump(Counter::BytesRead, rec.bytes as i64);
                r.raise(Counter::MaxByteRead, (rec.offset + rec.bytes) as i64);
                r.bump(read_size_bucket(rec.bytes), 1);
                r.fadd(FCounter::ReadTime, duration);
                r.fraise(FCounter::MaxReadTime, duration);
                if let Some(prev_end) = r.last_read_end {
                    if rec.offset == prev_end {
                        r.bump(Counter::ConsecReads, 1);
                    }
                    if rec.offset >= prev_end {
                        r.bump(Counter::SeqReads, 1);
                    }
                }
                r.last_read_end = Some(rec.offset + rec.bytes);
                if r.last_was_write == Some(true) {
                    r.bump(Counter::RwSwitches, 1);
                }
                r.last_was_write = Some(false);
            }
            OpClass::Write => {
                r.bump(Counter::Writes, 1);
                r.bump(Counter::BytesWritten, rec.bytes as i64);
                r.raise(Counter::MaxByteWritten, (rec.offset + rec.bytes) as i64);
                r.bump(write_size_bucket(rec.bytes), 1);
                r.fadd(FCounter::WriteTime, duration);
                r.fraise(FCounter::MaxWriteTime, duration);
                if let Some(prev_end) = r.last_write_end {
                    if rec.offset == prev_end {
                        r.bump(Counter::ConsecWrites, 1);
                    }
                    if rec.offset >= prev_end {
                        r.bump(Counter::SeqWrites, 1);
                    }
                }
                r.last_write_end = Some(rec.offset + rec.bytes);
                if r.last_was_write == Some(false) {
                    r.bump(Counter::RwSwitches, 1);
                }
                r.last_was_write = Some(true);
            }
            OpClass::Open => {
                r.bump(Counter::Opens, 1);
                r.fadd(FCounter::MetaTime, duration);
                let start = rec.start.as_secs_f64();
                let cur = r.fget(FCounter::OpenStartTimestamp);
                if cur == 0.0 || start < cur {
                    r.fset(FCounter::OpenStartTimestamp, start);
                }
            }
            OpClass::Stat => {
                r.bump(Counter::Stats, 1);
                r.fadd(FCounter::MetaTime, duration);
            }
            OpClass::Close => {
                r.fadd(FCounter::MetaTime, duration);
                r.fraise(FCounter::CloseEndTimestamp, end_secs);
            }
            OpClass::Unlink => {
                r.bump(Counter::Unlinks, 1);
                r.fadd(FCounter::MetaTime, duration);
            }
            OpClass::Sync => {
                r.bump(Counter::Fsyncs, 1);
                r.fadd(FCounter::MetaTime, duration);
            }
            OpClass::DirOp => {
                r.fadd(FCounter::MetaTime, duration);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;

    fn rec(
        rank: u32,
        file: u32,
        class: OpClass,
        offset: u64,
        bytes: u64,
        t0_us: u64,
        t1_us: u64,
    ) -> OpRecord {
        OpRecord {
            rank,
            file: Some(FileId(file)),
            module: Module::Posix,
            class,
            offset,
            bytes,
            start: SimTime::from_micros(t0_us),
            end: SimTime::from_micros(t1_us),
        }
    }

    #[test]
    fn sequential_write_detection() {
        let mut c = Collector::new("t", 1);
        c.record(&rec(0, 1, OpClass::Write, 0, 100, 0, 10));
        c.record(&rec(0, 1, OpClass::Write, 100, 100, 10, 20)); // consec
        c.record(&rec(0, 1, OpClass::Write, 500, 100, 20, 30)); // seq (gap)
        c.record(&rec(0, 1, OpClass::Write, 50, 100, 30, 40)); // backwards
        let log = c.finish();
        let r = &log.records[0];
        assert_eq!(r.get(Counter::Writes), 4);
        assert_eq!(r.get(Counter::ConsecWrites), 1);
        assert_eq!(r.get(Counter::SeqWrites), 2); // consec counts as seq too
        assert_eq!(r.get(Counter::BytesWritten), 400);
        assert_eq!(r.get(Counter::MaxByteWritten), 600);
    }

    #[test]
    fn rw_switch_detection() {
        let mut c = Collector::new("t", 1);
        c.record(&rec(0, 1, OpClass::Write, 0, 10, 0, 1));
        c.record(&rec(0, 1, OpClass::Read, 0, 10, 1, 2));
        c.record(&rec(0, 1, OpClass::Read, 10, 10, 2, 3));
        c.record(&rec(0, 1, OpClass::Write, 0, 10, 3, 4));
        let log = c.finish();
        assert_eq!(log.records[0].get(Counter::RwSwitches), 2);
    }

    #[test]
    fn size_histograms_fill() {
        let mut c = Collector::new("t", 1);
        c.record(&rec(0, 1, OpClass::Write, 0, 2048, 0, 1));
        c.record(&rec(0, 1, OpClass::Write, 2048, 2048, 1, 2));
        c.record(&rec(0, 1, OpClass::Write, 4096, 16 << 20, 2, 3));
        let log = c.finish();
        let r = &log.records[0];
        assert_eq!(r.get(Counter::SizeWrite1K_10K), 2);
        assert_eq!(r.get(Counter::SizeWrite10M_100M), 1);
    }

    #[test]
    fn per_rank_per_file_records() {
        let mut c = Collector::new("t", 2);
        c.record(&rec(0, 1, OpClass::Write, 0, 10, 0, 1));
        c.record(&rec(1, 1, OpClass::Write, 10, 10, 0, 1));
        c.record(&rec(0, 2, OpClass::Read, 0, 10, 1, 2));
        let log = c.finish();
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.header.file_count, 2);
        assert_eq!(log.header.nprocs, 2);
    }

    #[test]
    fn meta_time_accumulates() {
        let mut c = Collector::new("t", 1);
        c.record(&rec(0, 1, OpClass::Open, 0, 0, 0, 100));
        c.record(&rec(0, 1, OpClass::Stat, 0, 0, 100, 250));
        c.record(&rec(0, 1, OpClass::Close, 0, 0, 250, 260));
        let log = c.finish();
        let r = &log.records[0];
        assert_eq!(r.get(Counter::Opens), 1);
        assert_eq!(r.get(Counter::Stats), 1);
        assert!((r.fget(FCounter::MetaTime) - 260e-6).abs() < 1e-9);
        assert!((r.fget(FCounter::CloseEndTimestamp) - 260e-6).abs() < 1e-9);
    }

    #[test]
    fn runtime_tracks_last_end() {
        let mut c = Collector::new("t", 1);
        c.record(&rec(0, 1, OpClass::Write, 0, 10, 0, 5_000_000));
        let log = c.finish();
        assert!((log.header.runtime_secs - 5.0).abs() < 1e-9);
    }

    #[test]
    fn directory_ops_do_not_create_file_records() {
        let mut c = Collector::new("t", 1);
        c.record(&OpRecord {
            rank: 0,
            file: None,
            module: Module::Posix,
            class: OpClass::DirOp,
            offset: 0,
            bytes: 0,
            start: SimTime::ZERO,
            end: SimTime::from_micros(10),
        });
        let log = c.finish();
        assert!(log.records.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::counters::{Counter, COUNTERS};
    use proptest::prelude::*;
    use simcore::time::SimTime;

    fn arb_ops() -> impl Strategy<Value = Vec<(u8, u32, u64, u64)>> {
        // (class selector, file, offset, len)
        proptest::collection::vec((0u8..4, 1u32..4, 0u64..1_000_000, 1u64..100_000), 1..200)
    }

    proptest! {
        /// Byte and op counts are conserved exactly for arbitrary traces,
        /// and every size lands in exactly one histogram bucket.
        #[test]
        fn collector_conserves(ops in arb_ops()) {
            let mut c = Collector::new("prop", 4);
            let mut expect_read = 0i64;
            let mut expect_write = 0i64;
            let mut nreads = 0i64;
            let mut nwrites = 0i64;
            let mut t = 0u64;
            for (class, file, offset, len) in ops {
                t += 10;
                let (class, bytes) = match class {
                    0 => { expect_write += len as i64; nwrites += 1; (OpClass::Write, len) }
                    1 => { expect_read += len as i64; nreads += 1; (OpClass::Read, len) }
                    2 => (OpClass::Stat, 0),
                    _ => (OpClass::Open, 0),
                };
                c.record(&OpRecord {
                    rank: file % 2,
                    file: Some(FileId(file)),
                    module: Module::Posix,
                    class,
                    offset,
                    bytes,
                    start: SimTime::from_micros(t),
                    end: SimTime::from_micros(t + 5),
                });
            }
            let log = c.finish();
            let sum = |cn: Counter| -> i64 { log.records.iter().map(|r| r.get(cn)).sum() };
            prop_assert_eq!(sum(Counter::BytesWritten), expect_write);
            prop_assert_eq!(sum(Counter::BytesRead), expect_read);
            prop_assert_eq!(sum(Counter::Writes), nwrites);
            prop_assert_eq!(sum(Counter::Reads), nreads);
            // Histogram buckets partition the writes.
            let wbuckets: i64 = COUNTERS
                .iter()
                .filter(|cn| cn.name().starts_with("SIZE_WRITE"))
                .map(|&cn| sum(cn))
                .sum();
            prop_assert_eq!(wbuckets, nwrites);
            // SEQ >= CONSEC always.
            prop_assert!(sum(Counter::SeqWrites) >= sum(Counter::ConsecWrites));
            prop_assert!(sum(Counter::SeqReads) >= sum(Counter::ConsecReads));
        }
    }
}
