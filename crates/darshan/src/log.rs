//! The log model: job header plus per-(rank, file, module) records.

use crate::counters::{Counter, FCounter, COUNTERS, FCOUNTERS};
use pfs::ops::{FileId, Module};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Job-level header (Darshan's log header).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobHeader {
    /// Executable / workload name.
    pub exe: String,
    /// Number of MPI processes.
    pub nprocs: u32,
    /// Job runtime in seconds.
    pub runtime_secs: f64,
    /// Count of distinct files accessed.
    pub file_count: u64,
}

impl JobHeader {
    /// Render the header the way `darshan-parser` would summarise it.
    pub fn render(&self) -> String {
        format!(
            "# exe: {}\n# nprocs: {}\n# run time: {:.4} s\n# files: {}",
            self.exe, self.nprocs, self.runtime_secs, self.file_count
        )
    }
}

/// One per-(rank, file) record within a module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileRecord {
    /// Issuing rank.
    pub rank: u32,
    /// File identifier (Darshan record id).
    pub file: FileId,
    /// Module the record belongs to.
    pub module: Module,
    /// Integer counters, indexed by [`Counter::index`].
    pub counters: Vec<i64>,
    /// Floating-point counters, indexed by [`FCounter::index`].
    pub fcounters: Vec<f64>,
    // Internal sequential-access tracking (not serialised by Darshan).
    #[serde(skip)]
    pub(crate) last_read_end: Option<u64>,
    #[serde(skip)]
    pub(crate) last_write_end: Option<u64>,
    #[serde(skip)]
    pub(crate) last_was_write: Option<bool>,
}

impl FileRecord {
    /// Fresh zeroed record.
    pub fn new(rank: u32, file: FileId, module: Module) -> Self {
        FileRecord {
            rank,
            file,
            module,
            counters: vec![0; COUNTERS.len()],
            fcounters: vec![0.0; FCOUNTERS.len()],
            last_read_end: None,
            last_write_end: None,
            last_was_write: None,
        }
    }

    /// Read an integer counter.
    pub fn get(&self, c: Counter) -> i64 {
        self.counters[c.index()]
    }

    /// Increment an integer counter.
    pub fn bump(&mut self, c: Counter, by: i64) {
        self.counters[c.index()] += by;
    }

    /// Raise an integer counter to at least `v` (for MAX_* counters).
    pub fn raise(&mut self, c: Counter, v: i64) {
        let idx = c.index();
        if self.counters[idx] < v {
            self.counters[idx] = v;
        }
    }

    /// Read a float counter.
    pub fn fget(&self, c: FCounter) -> f64 {
        self.fcounters[c.index()]
    }

    /// Add to a float counter.
    pub fn fadd(&mut self, c: FCounter, by: f64) {
        self.fcounters[c.index()] += by;
    }

    /// Raise a float counter to at least `v`.
    pub fn fraise(&mut self, c: FCounter, v: f64) {
        let idx = c.index();
        if self.fcounters[idx] < v {
            self.fcounters[idx] = v;
        }
    }

    /// Set a float counter.
    pub fn fset(&mut self, c: FCounter, v: f64) {
        self.fcounters[c.index()] = v;
    }
}

/// A complete Darshan-like log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DarshanLog {
    /// Job header.
    pub header: JobHeader,
    /// All records, ordered by (module, file, rank).
    pub records: Vec<FileRecord>,
}

impl DarshanLog {
    /// Records of one module.
    pub fn module_records(&self, module: Module) -> impl Iterator<Item = &FileRecord> {
        self.records.iter().filter(move |r| r.module == module)
    }

    /// Distinct files touched in a module.
    pub fn files_in(&self, module: Module) -> Vec<FileId> {
        let mut v: Vec<FileId> = self.module_records(module).map(|r| r.file).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Sum of an integer counter across all records of a module.
    pub fn total(&self, module: Module, c: Counter) -> i64 {
        self.module_records(module).map(|r| r.get(c)).sum()
    }

    /// Compute the shared-file variance reduction (Darshan computes these at
    /// log finalisation): for every file accessed by more than one rank,
    /// fill `VarianceRankTime` / `VarianceRankBytes` on each of its records.
    pub fn compute_shared_file_variance(&mut self) {
        #[derive(Default)]
        struct Agg {
            times: Vec<f64>,
            bytes: Vec<f64>,
        }
        let mut by_file: BTreeMap<(Module, FileId), Agg> = BTreeMap::new();
        for r in &self.records {
            let a = by_file.entry((r.module, r.file)).or_default();
            a.times
                .push(r.fget(FCounter::ReadTime) + r.fget(FCounter::WriteTime));
            a.bytes
                .push((r.get(Counter::BytesRead) + r.get(Counter::BytesWritten)) as f64);
        }
        let variance = |xs: &[f64]| -> f64 {
            if xs.len() < 2 {
                return 0.0;
            }
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64
        };
        let stats: BTreeMap<(Module, FileId), (f64, f64, usize)> = by_file
            .into_iter()
            .map(|(k, a)| (k, (variance(&a.times), variance(&a.bytes), a.times.len())))
            .collect();
        for r in &mut self.records {
            if let Some(&(vt, vb, n)) = stats.get(&(r.module, r.file)) {
                if n > 1 {
                    r.fset(FCounter::VarianceRankTime, vt);
                    r.fset(FCounter::VarianceRankBytes, vb);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_counter_ops() {
        let mut r = FileRecord::new(0, FileId(1), Module::Posix);
        r.bump(Counter::Reads, 2);
        r.bump(Counter::Reads, 1);
        assert_eq!(r.get(Counter::Reads), 3);
        r.raise(Counter::MaxByteRead, 100);
        r.raise(Counter::MaxByteRead, 50);
        assert_eq!(r.get(Counter::MaxByteRead), 100);
        r.fadd(FCounter::ReadTime, 0.5);
        r.fadd(FCounter::ReadTime, 0.25);
        assert!((r.fget(FCounter::ReadTime) - 0.75).abs() < 1e-12);
        r.fraise(FCounter::MaxReadTime, 0.1);
        r.fraise(FCounter::MaxReadTime, 0.05);
        assert_eq!(r.fget(FCounter::MaxReadTime), 0.1);
    }

    #[test]
    fn variance_reduction_fills_shared_files() {
        let mut a = FileRecord::new(0, FileId(1), Module::Posix);
        a.bump(Counter::BytesWritten, 100);
        a.fadd(FCounter::WriteTime, 1.0);
        let mut b = FileRecord::new(1, FileId(1), Module::Posix);
        b.bump(Counter::BytesWritten, 300);
        b.fadd(FCounter::WriteTime, 3.0);
        let solo = FileRecord::new(0, FileId(2), Module::Posix);
        let mut log = DarshanLog {
            header: JobHeader {
                exe: "t".into(),
                nprocs: 2,
                runtime_secs: 1.0,
                file_count: 2,
            },
            records: vec![a, b, solo],
        };
        log.compute_shared_file_variance();
        // Population variance of {1,3} = 1; of {100,300} = 10000.
        assert!((log.records[0].fget(FCounter::VarianceRankTime) - 1.0).abs() < 1e-9);
        assert!((log.records[1].fget(FCounter::VarianceRankBytes) - 10_000.0).abs() < 1e-6);
        // Single-rank file untouched.
        assert_eq!(log.records[2].fget(FCounter::VarianceRankTime), 0.0);
    }

    #[test]
    fn module_filters() {
        let log = DarshanLog {
            header: JobHeader {
                exe: "t".into(),
                nprocs: 1,
                runtime_secs: 1.0,
                file_count: 2,
            },
            records: vec![
                FileRecord::new(0, FileId(1), Module::Posix),
                FileRecord::new(0, FileId(2), Module::MpiIo),
            ],
        };
        assert_eq!(log.module_records(Module::Posix).count(), 1);
        assert_eq!(log.files_in(Module::MpiIo), vec![FileId(2)]);
    }

    #[test]
    fn header_render() {
        let h = JobHeader {
            exe: "IOR_16M".into(),
            nprocs: 50,
            runtime_secs: 12.5,
            file_count: 1,
        };
        let s = h.render();
        assert!(s.contains("IOR_16M"));
        assert!(s.contains("nprocs: 50"));
    }
}
