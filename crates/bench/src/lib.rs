//! Shared formatting helpers for the figure/table binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact from the paper's
//! evaluation (see DESIGN.md §4 for the index) and prints it in a fixed-width
//! layout suitable for EXPERIMENTS.md.

#![forbid(unsafe_code)]

/// Render a row of fixed-width cells.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}", w = w))
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Render a horizontal rule matching the widths.
pub fn rule(widths: &[usize]) -> String {
    widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("-+-")
}

/// `mean ± ci` cell.
pub fn pm(mean: f64, ci: f64) -> String {
    format!("{mean:.2} ± {ci:.2}")
}

/// Speedup series cell: "1.00 -> 3.41 -> 4.80".
pub fn series(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| format!("{x:.2}"))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Experiment scale: `STELLAR_SCALE` env var, default 1.0 (paper scale).
pub fn scale_from_env() -> f64 {
    // detlint::allow(D008): bench-harness knob only; the scale is echoed in
    // the bench JSON header, never into canonical run records
    std::env::var("STELLAR_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "a   | bb  ");
    }

    #[test]
    fn pm_format() {
        assert_eq!(pm(1.234, 0.056), "1.23 ± 0.06");
    }

    #[test]
    fn series_format() {
        assert_eq!(series(&[1.0, 2.5]), "1.00 -> 2.50");
    }
}
