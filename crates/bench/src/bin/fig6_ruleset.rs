//! Fig. 6 — speedup per tuning iteration with and without the global rule
//! set, on the five benchmarks (interpolation).

use bench::{scale_from_env, series};

fn main() {
    let scale = scale_from_env();
    let (rows, rules) = stellar::experiments::fig6(scale);
    println!("Fig. 6 — per-iteration speedup vs default (iteration 0 = untuned), scale={scale}\n");
    for r in &rows {
        println!("{}", r.workload);
        println!("  without rule set: {}", series(&r.without_rules));
        println!("  with rule set:    {}", series(&r.with_rules));
    }
    println!("\naccumulated global rule set ({} rules):", rules.len());
    println!("{}", rules.to_json());
}
