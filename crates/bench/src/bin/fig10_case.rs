//! Fig. 10 — the narrated MDWorkbench_8K case study.

use bench::scale_from_env;

fn main() {
    println!("{}", stellar::experiments::case_study(scale_from_env()));
}
