//! Fig. 5 — wall time under default vs human-expert vs STELLAR
//! configurations on the five benchmarks (8 replications, 90% CI).

use bench::{pm, row, rule, scale_from_env};

fn main() {
    let scale = scale_from_env();
    let rows = stellar::experiments::fig5(scale, 8, 2, 2);
    let widths = [16, 16, 16, 16, 10, 12];
    println!("Fig. 5 — wall time (s), smaller is better (scale={scale})\n");
    println!(
        "{}",
        row(
            &[
                "workload".into(),
                "default".into(),
                "expert".into(),
                "STELLAR".into(),
                "attempts".into(),
                "expert evals".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for r in &rows {
        println!(
            "{}",
            row(
                &[
                    r.workload.clone(),
                    pm(r.default_mean, r.default_ci),
                    pm(r.expert_mean, r.expert_ci),
                    pm(r.stellar_mean, r.stellar_ci),
                    format!("{}", r.stellar_attempts),
                    format!("{}", r.expert_evaluations)
                ],
                &widths
            )
        );
    }
    println!("\nspeedups vs default:");
    for r in &rows {
        println!(
            "  {:<16} expert x{:.2}   STELLAR x{:.2}{}",
            r.workload,
            r.default_mean / r.expert_mean,
            r.default_mean / r.stellar_mean,
            if r.stellar_mean < r.expert_mean {
                "   (STELLAR beats expert)"
            } else {
                ""
            }
        );
    }
}
