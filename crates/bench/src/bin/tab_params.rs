//! §4.2 — the RAG extraction pipeline's output: filter accounting and the
//! 13 selected tunables with descriptions and (dependent) ranges.

fn main() {
    let (params, report) = stellar::experiments::params_table();
    println!(
        "Parameter extraction pipeline (paper: 'STELLAR chooses a subset of 13 parameters')\n"
    );
    println!(
        "interface tree: {} parameters\n  writable:            {}\n  sufficiently documented: {}\n  non-binary:          {}\n  selected (high-impact): {}",
        report.total_params, report.writable, report.sufficient, report.non_binary, report.selected
    );
    println!(
        "\ndropped as insufficiently documented: {:?}",
        report.dropped_insufficient
    );
    println!(
        "dropped as binary trade-offs:         {:?}",
        report.dropped_binary
    );
    println!(
        "dropped as low-impact:                {:?}",
        report.dropped_low_impact
    );
    println!("\nselected tunables:");
    for p in &params {
        println!(
            "  {:<34} range {:?} .. {:?} (default {}{}{})",
            p.name,
            p.min,
            p.max,
            p.default,
            if p.unit.is_empty() { "" } else { " " },
            p.unit
        );
    }
    println!("\nexample description (stripe_count):");
    if let Some(sc) = params.iter().find(|p| p.name == "stripe_count") {
        println!("  {}", sc.description);
    }
}
