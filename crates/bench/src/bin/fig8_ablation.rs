//! Fig. 8 — component ablations (No Descriptions / No Analysis) on
//! MDWorkbench_8K.

use bench::{scale_from_env, series};

fn main() {
    let scale = scale_from_env();
    let rows = stellar::experiments::fig8(scale);
    println!("Fig. 8 — MDWorkbench_8K ablations (speedup per iteration), scale={scale}\n");
    for r in &rows {
        println!(
            "{:<16} best x{:.2}   {}",
            r.variant,
            r.best,
            series(&r.speedups)
        );
    }
}
