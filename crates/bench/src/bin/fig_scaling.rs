//! §5.6 extension — scale-invariance: IOR_16M tuned at 1x/2x/4x the paper's
//! cluster size.

use bench::scale_from_env;
use workloads::WorkloadKind;

fn main() {
    let scale = scale_from_env();
    let rows = stellar::experiments::scaling_experiment(WorkloadKind::Ior16M, scale);
    println!("§5.6 extension — IOR_16M across cluster sizes (scale={scale})\n");
    println!(
        "{:<6} {:<8} {:<6} {:>12} {:>16} {:>9} {:>15} {:>11}",
        "OSTs",
        "clients",
        "ranks",
        "default (s)",
        "STELLAR speedup",
        "attempts",
        "oracle speedup",
        "efficiency"
    );
    for r in &rows {
        println!(
            "{:<6} {:<8} {:<6} {:>12.2} {:>16.2} {:>9} {:>15.2} {:>10.0}%",
            r.osts,
            r.clients,
            r.ranks,
            r.default_wall,
            r.stellar_speedup,
            r.attempts,
            r.oracle_speedup,
            r.efficiency * 100.0
        );
    }
}
