//! Fig. 9 — different LLMs as the Tuning Agent on IOR_16M (≤ 5 iterations).

use bench::{scale_from_env, series};

fn main() {
    let scale = scale_from_env();
    let rows = stellar::experiments::fig9(scale);
    println!("Fig. 9 — IOR_16M tuned by different models, scale={scale}\n");
    for r in &rows {
        println!(
            "{:<24} best x{:.2} in {} attempts   {}",
            r.model,
            r.best,
            r.attempts,
            series(&r.speedups)
        );
    }
}
