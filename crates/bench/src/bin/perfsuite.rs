//! `perfsuite` — records the repository's performance trajectory
//! (`BENCH_sched.json`).
//!
//! The headline experiment is the campaign-scheduler A/B of this PR: a
//! skewed, MDWorkbench-heavy workload grid is run once per seed round and
//! each cell's wall time measured; the three scheduling policies (naive
//! FIFO grid order, hint-driven LPT, measurement-driven adaptive) are then
//! compared by replaying those *measured* costs through
//! `stellar::sched::makespan` — the same greedy claim loop the parallel
//! runner executes — so the round-makespan numbers are deterministic given
//! the measurements and independent of how many cores the benching host
//! happens to have. A small hot-path probe (mean simulator run time) rides
//! along so inner-loop regressions show up in the same artifact.
//!
//! ```text
//! perfsuite [--quick] [--out FILE] [--workers N] [--seeds N]
//!           [--light-scale F] [--heavy-scale F] [--attempts N]
//! perfsuite --simscale [--quick] [--out FILE] [--prior FILE]
//! ```
//!
//! `--quick` (the CI `bench-smoke` job) shrinks seeds and scales so the
//! suite finishes in well under a minute; the committed baseline is a full
//! run (8 seeds × 5 workloads).
//!
//! `--simscale` switches to the engine-scaling sweep (`BENCH_simscale.json`):
//! a ranks × OSTs grid of file-per-process IOR attempts run straight against
//! `PfsSimulator`, reporting wall seconds **and** host-comparable columns —
//! simulated ops/second and cost-per-op normalized by a calibration probe
//! (nanoseconds per `SimRng` lognormal draw on this host). `--prior FILE`
//! bakes a previous report's per-point costs in as `speedup_vs_prior`.

use pfs::{ClusterSpec, PfsSimulator, TuningConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use stellar::sched::{self, CostModel, Schedule};
use stellar::{Campaign, StellarBuilder};
use workloads::ior::Ior;
use workloads::{Workload, WorkloadKind};

#[derive(Serialize)]
struct RoundNumbers {
    seed: u64,
    /// Measured wall seconds per cell, grid order.
    cell_secs: Vec<f64>,
    fifo_makespan_secs: f64,
    lpt_makespan_secs: f64,
    adaptive_makespan_secs: f64,
}

#[derive(Serialize)]
struct HotPath {
    workload: String,
    scale: f64,
    reps: usize,
    mean_run_secs: f64,
}

#[derive(Serialize)]
struct SchedReport {
    bench: &'static str,
    mode: &'static str,
    grid: Vec<String>,
    light_scale: f64,
    heavy_scale: f64,
    attempts: usize,
    workers: usize,
    seeds: Vec<u64>,
    rounds: Vec<RoundNumbers>,
    total_fifo_makespan_secs: f64,
    total_lpt_makespan_secs: f64,
    total_adaptive_makespan_secs: f64,
    /// Round-makespan reduction of LPT vs FIFO, percent.
    lpt_reduction_pct: f64,
    /// Round-makespan reduction of adaptive vs FIFO, percent.
    adaptive_reduction_pct: f64,
    hot_path: HotPath,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `(1 - num/den) * 100`, or 0 when the denominator is empty (quick-mode
/// grids with zero measured cells must not poison the JSON with NaN).
fn pct_reduction(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        (1.0 - num / den) * 100.0
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------------
// --simscale: the engine-scaling sweep (BENCH_simscale.json)
// ---------------------------------------------------------------------------

/// One measured cell of the ranks × OSTs grid.
#[derive(Serialize)]
struct SimscalePoint {
    ranks: u32,
    osts: u32,
    /// Non-barrier simulated operations per attempt.
    sim_ops: u64,
    reps: usize,
    /// Mean wall seconds per attempt (host-dependent; see normalized columns).
    wall_secs_mean: f64,
    /// Fastest attempt in wall seconds — the least-contended rep, and the
    /// basis of the ops/cost columns (min is the standard robust estimator
    /// on shared hosts: contention only ever adds time).
    wall_secs_min: f64,
    /// Simulated operations per wall second, from the fastest attempt
    /// (0 when the cell is empty).
    ops_per_sec: f64,
    /// Wall nanoseconds per simulated operation, from the fastest attempt
    /// (0 when the cell is empty).
    cost_per_op_ns: f64,
    /// `cost_per_op_ns` divided by this host's calibration probe
    /// (ns per `SimRng` lognormal draw) — dimensionless and comparable
    /// across machines.
    cost_per_op_norm: f64,
    /// `cost_per_op_norm` from the `--prior` report at this grid point.
    #[serde(skip_serializing_if = "Option::is_none")]
    prior_cost_per_op_norm: Option<f64>,
    /// `prior_cost_per_op_norm / cost_per_op_norm` — how much cheaper one
    /// simulated op got since the prior report.
    #[serde(skip_serializing_if = "Option::is_none")]
    speedup_vs_prior: Option<f64>,
}

#[derive(Serialize)]
struct SimscaleReport {
    bench: &'static str,
    mode: &'static str,
    workload: String,
    /// Calibration probe: nanoseconds per `SimRng::lognormal_factor` draw on
    /// the benching host. Dividing `cost_per_op_ns` by this yields the
    /// host-comparable `cost_per_op_norm` column.
    calib_ns_per_draw: f64,
    sweeps: SimscaleSweeps,
}

#[derive(Serialize)]
struct SimscaleSweeps {
    /// The CI `bench-smoke` grid: small enough to finish in seconds.
    quick: Vec<SimscalePoint>,
    /// Full-mode extension, topped by the 1k-OST / 100k-rank point.
    full: Vec<SimscalePoint>,
}

/// The CI quick grid (largest point last — the regression-guard anchor).
const SIMSCALE_QUICK: &[(u32, u32)] = &[(50, 5), (1_000, 64), (10_000, 256)];
/// Full-mode extension: the datacenter target point.
const SIMSCALE_FULL: &[(u32, u32)] = &[(100_000, 1_000)];

/// The slice of a previous `BENCH_simscale.json` that `--prior` reads
/// (extra keys in the file are ignored by deserialization).
#[derive(Deserialize)]
struct PriorReport {
    sweeps: PriorSweeps,
}

#[derive(Deserialize)]
struct PriorSweeps {
    quick: Vec<PriorPoint>,
    full: Vec<PriorPoint>,
}

#[derive(Deserialize)]
struct PriorPoint {
    ranks: u32,
    osts: u32,
    cost_per_op_norm: f64,
}

/// Nanoseconds per `SimRng` lognormal draw on this host: the unit the
/// normalized columns are quoted in. Minimum over three ~700k-draw probes —
/// like the per-point wall minimum, the fastest probe is the one closest to
/// the host's uncontended speed.
fn calibrate_ns_per_draw() -> f64 {
    let mut rng = simcore::SimRng::new(0xCA11B).derive("simscale-calib", 0);
    let draws = 700_000u64;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut acc = 0.0f64;
        for _ in 0..draws {
            acc += rng.lognormal_factor(0.05);
        }
        let ns = t0.elapsed().as_nanos() as f64 / draws as f64;
        std::hint::black_box(acc);
        best = best.min(ns);
    }
    best
}

/// Look up `cost_per_op_norm` for `(ranks, osts)` in a previous
/// `BENCH_simscale.json` (searches both sweeps).
fn prior_norm(prior: &PriorReport, ranks: u32, osts: u32) -> Option<f64> {
    prior
        .sweeps
        .quick
        .iter()
        .chain(&prior.sweeps.full)
        .find(|p| p.ranks == ranks && p.osts == osts)
        .map(|p| p.cost_per_op_norm)
}

/// Measure one grid point: `reps` fresh engine runs of the fpp-IOR attempt.
fn simscale_point(
    ranks: u32,
    osts: u32,
    calib_ns: f64,
    prior: Option<&PriorReport>,
) -> SimscalePoint {
    let topo = ClusterSpec::scaled(ranks, osts);
    let sim = PfsSimulator::new(topo.clone());
    let cfg = TuningConfig::lustre_default();
    // 4 MiB transfers into a 16 MiB block per rank: 12 non-barrier ops per
    // rank (create/open + close per phase, 4 writes, 4 reads), so the grid
    // stresses event dispatch and placement rather than byte accounting.
    let w = Ior::ior_fpp(4 << 20, 16 << 20);
    let streams = w.generate(&topo, 1);
    let sim_ops: u64 = streams
        .iter()
        .map(|s| (s.ops.len() - s.barrier_count()) as u64)
        .sum();

    let reps = match ranks {
        0..=1_000 => 5,
        1_001..=10_000 => 3,
        _ => 2,
    };
    let mut total = 0.0;
    let mut wall_min = f64::INFINITY;
    for rep in 0..reps {
        let t0 = Instant::now();
        let r = sim.run(w.generate(&topo, 1), &cfg, 1 + rep as u64);
        let wall = t0.elapsed().as_secs_f64();
        total += wall;
        wall_min = wall_min.min(wall);
        std::hint::black_box(r.wall_secs);
    }
    let wall_mean = total / reps as f64;

    // Cost columns come from the fastest rep: contention on a shared host
    // only ever inflates wall time, so the minimum is the closest estimate
    // of the engine's true cost. Empty/degenerate cells report zeros rather
    // than dividing by zero.
    let (ops_per_sec, cost_per_op_ns) = if sim_ops > 0 && wall_min > 0.0 {
        (sim_ops as f64 / wall_min, wall_min * 1e9 / sim_ops as f64)
    } else {
        (0.0, 0.0)
    };
    let cost_per_op_norm = if calib_ns > 0.0 {
        cost_per_op_ns / calib_ns
    } else {
        0.0
    };
    let prior_cost_per_op_norm = prior.and_then(|p| prior_norm(p, ranks, osts));
    let speedup_vs_prior = prior_cost_per_op_norm
        .filter(|_| cost_per_op_norm > 0.0)
        .map(|p| p / cost_per_op_norm);
    SimscalePoint {
        ranks,
        osts,
        sim_ops,
        reps,
        wall_secs_mean: wall_mean,
        wall_secs_min: wall_min,
        ops_per_sec,
        cost_per_op_ns,
        cost_per_op_norm,
        prior_cost_per_op_norm,
        speedup_vs_prior,
    }
}

fn run_simscale(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let out = flag(args, "--out").unwrap_or_else(|| "BENCH_simscale.json".into());
    let prior: Option<PriorReport> = flag(args, "--prior").map(|path| {
        let text = std::fs::read_to_string(&path).expect("read --prior file");
        serde_json::from_str(&text).expect("parse --prior JSON")
    });

    let calib_ns = calibrate_ns_per_draw();
    eprintln!("simscale: calibration {calib_ns:.1} ns/draw");

    let measure_tier = |points: &[(u32, u32)]| -> Vec<SimscalePoint> {
        points
            .iter()
            .map(|&(ranks, osts)| {
                eprintln!("simscale: {ranks} ranks x {osts} OSTs...");
                let p = simscale_point(ranks, osts, calib_ns, prior.as_ref());
                eprintln!(
                    "simscale:   {:.3}s mean, {:.0} ops/s, {:.0} ns/op (norm {:.1}{})",
                    p.wall_secs_mean,
                    p.ops_per_sec,
                    p.cost_per_op_ns,
                    p.cost_per_op_norm,
                    p.speedup_vs_prior
                        .map(|s| format!(", {s:.1}x vs prior"))
                        .unwrap_or_default(),
                );
                p
            })
            .collect()
    };

    let report = SimscaleReport {
        bench: "simscale",
        mode: if quick { "quick" } else { "full" },
        workload: Ior::ior_fpp(4 << 20, 16 << 20).name(),
        calib_ns_per_draw: calib_ns,
        sweeps: SimscaleSweeps {
            quick: measure_tier(SIMSCALE_QUICK),
            full: if quick {
                Vec::new()
            } else {
                measure_tier(SIMSCALE_FULL)
            },
        },
    };

    for p in report.sweeps.quick.iter().chain(&report.sweeps.full) {
        println!(
            "simscale {}x{}: {:.0} ops/s, {:.0} ns/op, norm {:.1}",
            p.ranks, p.osts, p.ops_per_sec, p.cost_per_op_ns, p.cost_per_op_norm
        );
    }
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, rendered + "\n").expect("write BENCH json");
    println!("wrote {out}");
}

/// The skewed grid: four comparably light cells and one dominant
/// MDWorkbench cell, heaviest *last* in grid order — the worst case for
/// FIFO, which claims cells in grid order and strands the round on the
/// late straggler. Per-cell multipliers equalize the light cells
/// (MDWorkbench_2K is metadata-dense and IOR_16M cheap to simulate, so at
/// a uniform scale the round would have two self-balancing heavies
/// instead of one straggler).
fn grid(light: f64, heavy: f64) -> Vec<(WorkloadKind, f64)> {
    vec![
        (WorkloadKind::Ior64K, light),
        (WorkloadKind::Ior16M, light * 2.0),
        (WorkloadKind::Io500, light),
        (WorkloadKind::MdWorkbench2K, light * 0.25),
        (WorkloadKind::MdWorkbench8K, heavy),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--simscale") {
        run_simscale(&args);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_sched.json".into());
    let workers: usize = flag(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let n_seeds: usize = flag(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 8 });
    let light_scale: f64 = flag(&args, "--light-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 0.04 } else { 0.05 });
    let heavy_scale: f64 = flag(&args, "--heavy-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 0.04 } else { 0.05 });
    let attempts: usize = flag(&args, "--attempts")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 3 });

    let seeds: Vec<u64> = (0..n_seeds as u64).map(|i| 1_041 + i).collect();
    let cells = grid(light_scale, heavy_scale);
    let engine = StellarBuilder::new().attempt_budget(attempts).build();
    let topo = engine.sim().topology();

    // The static cost model the LPT policy plans from (what the Campaign
    // runner derives internally).
    let workloads: Vec<Box<dyn Workload>> = cells.iter().map(|(k, s)| k.spec_at(*s)).collect();
    let hint_model = CostModel::from_hints(workloads.iter().map(|w| w.cost_hint(topo)));

    // Measure every cell once per round, serially, so per-cell timings are
    // undistorted by co-scheduling.
    eprintln!(
        "perfsuite: measuring {} rounds x {} cells (serial)...",
        seeds.len(),
        cells.len()
    );
    let mut campaign = Campaign::new(&engine).seeds(seeds.iter().copied());
    for w in workloads {
        campaign = campaign.workload(w);
    }
    let report = campaign.run_serial();

    // Replay the measured costs through each policy's plan.
    let fifo_order: Vec<usize> = (0..cells.len()).collect();
    let lpt_order = sched::plan(Schedule::Lpt, &hint_model);
    let mut adaptive_model = hint_model.clone();
    let mut rounds = Vec::new();
    let (mut tot_fifo, mut tot_lpt, mut tot_adapt) = (0.0, 0.0, 0.0);
    for r in &report.sched_stats.rounds {
        let costs = &r.cell_secs;
        let adaptive_order = sched::plan(Schedule::Adaptive, &adaptive_model);
        let fifo = sched::makespan(&fifo_order, costs, workers);
        let lpt = sched::makespan(&lpt_order, costs, workers);
        let adaptive = sched::makespan(&adaptive_order, costs, workers);
        for (i, &secs) in costs.iter().enumerate() {
            adaptive_model.observe(i, secs);
        }
        tot_fifo += fifo;
        tot_lpt += lpt;
        tot_adapt += adaptive;
        rounds.push(RoundNumbers {
            seed: r.seed,
            cell_secs: costs.clone(),
            fifo_makespan_secs: fifo,
            lpt_makespan_secs: lpt,
            adaptive_makespan_secs: adaptive,
        });
    }

    // Hot-path probe: mean wall-clock of one traced-free simulator run.
    let hot_w = WorkloadKind::Ior16M.spec_at(if quick { 0.1 } else { 0.3 });
    let reps = if quick { 3 } else { 8 };
    let cfg = pfs::params::TuningConfig::lustre_default();
    let t0 = Instant::now();
    let _ = stellar::measure::measure(engine.sim(), hot_w.as_ref(), &cfg, reps, "perfsuite-hot");
    let hot_mean = t0.elapsed().as_secs_f64() / reps as f64;

    let json = SchedReport {
        bench: "campaign_sched",
        mode: if quick { "quick" } else { "full" },
        grid: cells
            .iter()
            .map(|(k, s)| format!("{}@{s}", k.label()))
            .collect(),
        light_scale,
        heavy_scale,
        attempts,
        workers,
        seeds,
        rounds,
        total_fifo_makespan_secs: tot_fifo,
        total_lpt_makespan_secs: tot_lpt,
        total_adaptive_makespan_secs: tot_adapt,
        lpt_reduction_pct: pct_reduction(tot_lpt, tot_fifo),
        adaptive_reduction_pct: pct_reduction(tot_adapt, tot_fifo),
        hot_path: HotPath {
            workload: hot_w.name(),
            scale: if quick { 0.1 } else { 0.3 },
            reps,
            mean_run_secs: hot_mean,
        },
    };

    println!(
        "campaign_sched ({} mode, {} workers): FIFO {:.2}s | LPT {:.2}s ({:+.1}%) | adaptive {:.2}s ({:+.1}%)",
        json.mode,
        workers,
        tot_fifo,
        tot_lpt,
        -json.lpt_reduction_pct,
        tot_adapt,
        -json.adaptive_reduction_pct,
    );
    println!(
        "hot path: {} x{} reps, {:.3}s mean per simulated run",
        json.hot_path.workload, reps, hot_mean
    );
    let rendered = serde_json::to_string_pretty(&json).expect("report serializes");
    std::fs::write(&out, rendered + "\n").expect("write BENCH json");
    println!("wrote {out}");
}
