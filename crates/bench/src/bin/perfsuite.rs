//! `perfsuite` — records the repository's performance trajectory
//! (`BENCH_sched.json`).
//!
//! The headline experiment is the campaign-scheduler A/B of this PR: a
//! skewed, MDWorkbench-heavy workload grid is run once per seed round and
//! each cell's wall time measured; the three scheduling policies (naive
//! FIFO grid order, hint-driven LPT, measurement-driven adaptive) are then
//! compared by replaying those *measured* costs through
//! `stellar::sched::makespan` — the same greedy claim loop the parallel
//! runner executes — so the round-makespan numbers are deterministic given
//! the measurements and independent of how many cores the benching host
//! happens to have. A small hot-path probe (mean simulator run time) rides
//! along so inner-loop regressions show up in the same artifact.
//!
//! ```text
//! perfsuite [--quick] [--out FILE] [--workers N] [--seeds N]
//!           [--light-scale F] [--heavy-scale F] [--attempts N]
//! ```
//!
//! `--quick` (the CI `bench-smoke` job) shrinks seeds and scales so the
//! suite finishes in well under a minute; the committed baseline is a full
//! run (8 seeds × 5 workloads).

use serde::Serialize;
use std::time::Instant;
use stellar::sched::{self, CostModel, Schedule};
use stellar::{Campaign, StellarBuilder};
use workloads::{Workload, WorkloadKind};

#[derive(Serialize)]
struct RoundNumbers {
    seed: u64,
    /// Measured wall seconds per cell, grid order.
    cell_secs: Vec<f64>,
    fifo_makespan_secs: f64,
    lpt_makespan_secs: f64,
    adaptive_makespan_secs: f64,
}

#[derive(Serialize)]
struct HotPath {
    workload: String,
    scale: f64,
    reps: usize,
    mean_run_secs: f64,
}

#[derive(Serialize)]
struct SchedReport {
    bench: &'static str,
    mode: &'static str,
    grid: Vec<String>,
    light_scale: f64,
    heavy_scale: f64,
    attempts: usize,
    workers: usize,
    seeds: Vec<u64>,
    rounds: Vec<RoundNumbers>,
    total_fifo_makespan_secs: f64,
    total_lpt_makespan_secs: f64,
    total_adaptive_makespan_secs: f64,
    /// Round-makespan reduction of LPT vs FIFO, percent.
    lpt_reduction_pct: f64,
    /// Round-makespan reduction of adaptive vs FIFO, percent.
    adaptive_reduction_pct: f64,
    hot_path: HotPath,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The skewed grid: four comparably light cells and one dominant
/// MDWorkbench cell, heaviest *last* in grid order — the worst case for
/// FIFO, which claims cells in grid order and strands the round on the
/// late straggler. Per-cell multipliers equalize the light cells
/// (MDWorkbench_2K is metadata-dense and IOR_16M cheap to simulate, so at
/// a uniform scale the round would have two self-balancing heavies
/// instead of one straggler).
fn grid(light: f64, heavy: f64) -> Vec<(WorkloadKind, f64)> {
    vec![
        (WorkloadKind::Ior64K, light),
        (WorkloadKind::Ior16M, light * 2.0),
        (WorkloadKind::Io500, light),
        (WorkloadKind::MdWorkbench2K, light * 0.25),
        (WorkloadKind::MdWorkbench8K, heavy),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_sched.json".into());
    let workers: usize = flag(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let n_seeds: usize = flag(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 8 });
    let light_scale: f64 = flag(&args, "--light-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 0.04 } else { 0.05 });
    let heavy_scale: f64 = flag(&args, "--heavy-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 0.04 } else { 0.05 });
    let attempts: usize = flag(&args, "--attempts")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 3 });

    let seeds: Vec<u64> = (0..n_seeds as u64).map(|i| 1_041 + i).collect();
    let cells = grid(light_scale, heavy_scale);
    let engine = StellarBuilder::new().attempt_budget(attempts).build();
    let topo = engine.sim().topology();

    // The static cost model the LPT policy plans from (what the Campaign
    // runner derives internally).
    let workloads: Vec<Box<dyn Workload>> = cells.iter().map(|(k, s)| k.spec_at(*s)).collect();
    let hint_model = CostModel::from_hints(workloads.iter().map(|w| w.cost_hint(topo)));

    // Measure every cell once per round, serially, so per-cell timings are
    // undistorted by co-scheduling.
    eprintln!(
        "perfsuite: measuring {} rounds x {} cells (serial)...",
        seeds.len(),
        cells.len()
    );
    let mut campaign = Campaign::new(&engine).seeds(seeds.iter().copied());
    for w in workloads {
        campaign = campaign.workload(w);
    }
    let report = campaign.run_serial();

    // Replay the measured costs through each policy's plan.
    let fifo_order: Vec<usize> = (0..cells.len()).collect();
    let lpt_order = sched::plan(Schedule::Lpt, &hint_model);
    let mut adaptive_model = hint_model.clone();
    let mut rounds = Vec::new();
    let (mut tot_fifo, mut tot_lpt, mut tot_adapt) = (0.0, 0.0, 0.0);
    for r in &report.sched_stats.rounds {
        let costs = &r.cell_secs;
        let adaptive_order = sched::plan(Schedule::Adaptive, &adaptive_model);
        let fifo = sched::makespan(&fifo_order, costs, workers);
        let lpt = sched::makespan(&lpt_order, costs, workers);
        let adaptive = sched::makespan(&adaptive_order, costs, workers);
        for (i, &secs) in costs.iter().enumerate() {
            adaptive_model.observe(i, secs);
        }
        tot_fifo += fifo;
        tot_lpt += lpt;
        tot_adapt += adaptive;
        rounds.push(RoundNumbers {
            seed: r.seed,
            cell_secs: costs.clone(),
            fifo_makespan_secs: fifo,
            lpt_makespan_secs: lpt,
            adaptive_makespan_secs: adaptive,
        });
    }

    // Hot-path probe: mean wall-clock of one traced-free simulator run.
    let hot_w = WorkloadKind::Ior16M.spec_at(if quick { 0.1 } else { 0.3 });
    let reps = if quick { 3 } else { 8 };
    let cfg = pfs::params::TuningConfig::lustre_default();
    let t0 = Instant::now();
    let _ = stellar::measure::measure(engine.sim(), hot_w.as_ref(), &cfg, reps, "perfsuite-hot");
    let hot_mean = t0.elapsed().as_secs_f64() / reps as f64;

    let json = SchedReport {
        bench: "campaign_sched",
        mode: if quick { "quick" } else { "full" },
        grid: cells
            .iter()
            .map(|(k, s)| format!("{}@{s}", k.label()))
            .collect(),
        light_scale,
        heavy_scale,
        attempts,
        workers,
        seeds,
        rounds,
        total_fifo_makespan_secs: tot_fifo,
        total_lpt_makespan_secs: tot_lpt,
        total_adaptive_makespan_secs: tot_adapt,
        lpt_reduction_pct: (1.0 - tot_lpt / tot_fifo) * 100.0,
        adaptive_reduction_pct: (1.0 - tot_adapt / tot_fifo) * 100.0,
        hot_path: HotPath {
            workload: hot_w.name(),
            scale: if quick { 0.1 } else { 0.3 },
            reps,
            mean_run_secs: hot_mean,
        },
    };

    println!(
        "campaign_sched ({} mode, {} workers): FIFO {:.2}s | LPT {:.2}s ({:+.1}%) | adaptive {:.2}s ({:+.1}%)",
        json.mode,
        workers,
        tot_fifo,
        tot_lpt,
        -json.lpt_reduction_pct,
        tot_adapt,
        -json.adaptive_reduction_pct,
    );
    println!(
        "hot path: {} x{} reps, {:.3}s mean per simulated run",
        json.hot_path.workload, reps, hot_mean
    );
    let rendered = serde_json::to_string_pretty(&json).expect("report serializes");
    std::fs::write(&out, rendered + "\n").expect("write BENCH json");
    println!("wrote {out}");
}
