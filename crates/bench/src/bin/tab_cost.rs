//! §5.7 — token usage and prompt-cache hit rates for a complete tuning run.

use bench::{row, rule, scale_from_env};

fn main() {
    let scale = scale_from_env();
    let rows = stellar::experiments::cost_table(scale);
    let widths = [16, 20, 12, 14, 12, 12, 8];
    println!("§5.7 — token usage per complete tuning run (IOR_16M), scale={scale}\n");
    println!(
        "{}",
        row(
            &[
                "agent".into(),
                "model".into(),
                "input tok".into(),
                "cached tok".into(),
                "cache %".into(),
                "output tok".into(),
                "calls".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for r in &rows {
        println!(
            "{}",
            row(
                &[
                    r.agent.clone(),
                    r.model.clone(),
                    r.input_tokens.to_string(),
                    r.cached_input_tokens.to_string(),
                    format!("{:.1}%", r.cache_ratio * 100.0),
                    r.output_tokens.to_string(),
                    r.calls.to_string()
                ],
                &widths
            )
        );
    }
}
