//! §3's cost argument quantified: evaluations consumed vs best speedup for
//! STELLAR, random search at several budgets, and the expert oracle.

use bench::scale_from_env;
use workloads::WorkloadKind;

fn main() {
    let scale = scale_from_env();
    println!("Iteration-cost frontier on IOR_16M (scale={scale})\n");
    println!(
        "{:<36} {:>12} {:>14}",
        "tuner", "evaluations", "best speedup"
    );
    for r in stellar::experiments::iteration_cost(WorkloadKind::Ior16M, scale, &[6, 25, 100]) {
        println!(
            "{:<36} {:>12} {:>13.2}x",
            r.tuner, r.evaluations, r.best_speedup
        );
    }
}
