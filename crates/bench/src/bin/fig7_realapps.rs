//! Fig. 7 — rule-set extrapolation to previously unseen real applications
//! (AMReX, MACSio_512K, MACSio_16M), rules learned from benchmarks only.

use bench::{scale_from_env, series};

fn main() {
    let scale = scale_from_env();
    let (_, rules) = stellar::experiments::fig6(scale);
    let rows = stellar::experiments::fig7(scale, &rules);
    println!("Fig. 7 — per-iteration speedup vs default on unseen applications, scale={scale}\n");
    for r in &rows {
        println!("{}", r.workload);
        println!("  without rule set: {}", series(&r.without_rules));
        println!("  with rule set:    {}", series(&r.with_rules));
    }
}
