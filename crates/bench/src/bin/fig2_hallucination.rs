//! Fig. 2 — LLM hallucinations on parameter facts vs STELLAR's RAG
//! extraction, scored over the 13 tuning targets against ground truth.

use bench::{row, rule};

fn main() {
    let rows = stellar::experiments::fig2();
    let widths = [26, 12, 14, 10, 14, 12];
    println!("Fig. 2 — parameter-fact accuracy over the 13 tunables (def ✓/~/✗, range ✓/✗)\n");
    println!(
        "{}",
        row(
            &[
                "source".into(),
                "def correct".into(),
                "def imprecise".into(),
                "def wrong".into(),
                "range correct".into(),
                "range wrong".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for s in &rows {
        println!(
            "{}",
            row(
                &[
                    s.source.clone(),
                    s.def_correct.to_string(),
                    s.def_imprecise.to_string(),
                    s.def_wrong.to_string(),
                    s.range_correct.to_string(),
                    s.range_wrong.to_string()
                ],
                &widths
            )
        );
    }
    // The paper's concrete example: statahead_max.
    println!("\nstatahead_max example (parametric recall):");
    let registry = pfs::params::ParamRegistry::standard();
    let truth = ragx::truth::truth_fact(&registry, "llite.statahead_max").unwrap();
    for p in [
        llmsim::ModelProfile::gpt_45(),
        llmsim::ModelProfile::gemini_25_pro(),
        llmsim::ModelProfile::claude_37_sonnet(),
    ] {
        let f = llmsim::facts::corrupt(&p, &truth.name, &truth.definition, truth.min, truth.max);
        println!(
            "  {:<22} def={:?} range=[{}..{}] ({:?})",
            p.name, f.def_quality, f.min, f.max, f.range_quality
        );
    }
    println!(
        "  STELLAR RAG (gpt-4o)   def=Correct range=[{}..{}] (Correct)",
        truth.min, truth.max
    );
}
