//! Run every figure/table driver in sequence (the EXPERIMENTS.md generator).
//! Respects STELLAR_SCALE; use a smaller scale for a quick smoke pass.

use std::process::Command;

fn main() {
    let bins = [
        "fig2_hallucination",
        "tab_params",
        "fig5_tuning",
        "fig6_ruleset",
        "fig7_realapps",
        "fig8_ablation",
        "fig9_models",
        "tab_cost",
        "fig10_case",
        "fig_scaling",
        "tab_iterations",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in bins {
        println!("\n================================================================");
        println!("==== {bin}");
        println!("================================================================");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
