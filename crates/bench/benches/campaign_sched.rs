//! Campaign-scheduler benchmarks.
//!
//! Two layers:
//!
//! * `plan/*` — the planner itself (cost-model construction, LPT sort,
//!   greedy list-schedule simulation) at round sizes far beyond any real
//!   grid, pinning its overhead at effectively zero next to a cell run;
//! * `round/*` — one real (tiny) campaign executed under each scheduling
//!   policy end to end, exercising cost hints, the per-slot result
//!   collection and the measured-feedback loop.
//!
//! The recorded A/B numbers for the skewed MDWorkbench-heavy grid live in
//! `BENCH_sched.json`, produced by the `perfsuite` binary (which models
//! makespans from measured per-cell costs, independent of host cores).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stellar::sched::{self, CostModel, Schedule};
use stellar::{Campaign, Stellar, StellarBuilder};
use workloads::{CostHint, WorkloadKind};

/// A synthetic n-cell round with a long-tailed cost distribution.
fn synth_model(n: usize) -> CostModel {
    CostModel::from_hints((0..n).map(|i| CostHint {
        data_ops: ((i as u64 * 2_654_435_761) % 10_000) + 1,
        meta_ops: (i as u64 % 7) * 1_000,
        bytes: (i as u64 % 13) << 24,
    }))
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_sched");
    for n in [64usize, 4096] {
        let model = synth_model(n);
        let costs: Vec<f64> = (0..n).map(|i| model.cost(i, Schedule::Lpt)).collect();
        group.bench_function(&format!("plan/lpt/{n}"), |b| {
            b.iter(|| black_box(sched::plan(Schedule::Lpt, &model)))
        });
        let order = sched::plan(Schedule::Lpt, &model);
        group.bench_function(&format!("plan/makespan/{n}"), |b| {
            b.iter(|| black_box(sched::makespan(&order, &costs, 8)))
        });
    }
    group.finish();
}

fn tiny_campaign(engine: &Stellar, schedule: Schedule) {
    let report = Campaign::new(engine)
        .kinds(&[WorkloadKind::Ior16M, WorkloadKind::MdWorkbench2K], 0.03)
        .seeds([1])
        .threads(2)
        .schedule(schedule)
        .run();
    black_box(report);
}

fn bench_round_policies(c: &mut Criterion) {
    let engine = StellarBuilder::new().attempt_budget(2).build();
    let mut group = c.benchmark_group("campaign_sched");
    group.sample_size(10);
    for schedule in [Schedule::Fifo, Schedule::Lpt, Schedule::Adaptive] {
        group.bench_function(&format!("round/{}", schedule.label()), |b| {
            b.iter(|| tiny_campaign(&engine, schedule))
        });
    }
    group.finish();
}

/// The non-blocking seam under load: the same tiny campaign with seeded
/// backend latency injected, driven by a single multiplexing worker. The
/// interesting number is not the wall time (poll ticks are free) but the
/// overhead of the suspend/claim/poll machinery relative to `round/*` —
/// the gate should cost nanoseconds per turn, not microseconds.
fn bench_round_with_latency(c: &mut Criterion) {
    let engine = StellarBuilder::new()
        .attempt_budget(2)
        .backend_latency(llmsim::LatencyProfile::uniform(1, 4))
        .build();
    let mut group = c.benchmark_group("campaign_sched");
    group.sample_size(10);
    group.bench_function("round/latency-multiplexed-1-worker", |b| {
        b.iter(|| {
            let report = Campaign::new(&engine)
                .kinds(&[WorkloadKind::Ior16M, WorkloadKind::MdWorkbench2K], 0.03)
                .seeds([1])
                .threads(1)
                .run();
            debug_assert!(report.sched_stats.max_in_flight() >= 2);
            black_box(report);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_planner,
    bench_round_policies,
    bench_round_with_latency
);
criterion_main!(benches);
