//! Criterion microbenchmarks for the substrate layers: simulator engine
//! throughput per workload class, Darshan collection overhead, RAG retrieval
//! and extraction, and rule-set operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use llmsim::{ModelProfile, SimLlm};
use pfs::{ClusterSpec, PfsSimulator, TuningConfig};
use ragx::RagExtractor;
use std::hint::black_box;
use workloads::WorkloadKind;

fn bench_simulator(c: &mut Criterion) {
    let sim = PfsSimulator::new(ClusterSpec::paper_cluster());
    let cfg = TuningConfig::lustre_default();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for kind in [
        WorkloadKind::Ior16M,
        WorkloadKind::Ior64K,
        WorkloadKind::MdWorkbench8K,
        WorkloadKind::Macsio512K,
    ] {
        let spec = kind.spec().scaled(0.1);
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || spec.generate(sim.topology(), 1),
                |streams| black_box(sim.run(streams, &cfg, 1)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_darshan(c: &mut Criterion) {
    let sim = PfsSimulator::new(ClusterSpec::paper_cluster());
    let cfg = TuningConfig::lustre_default();
    let spec = WorkloadKind::Ior16M.spec().scaled(0.1);
    c.bench_function("darshan/collect+tables", |b| {
        b.iter_batched(
            || spec.generate(sim.topology(), 1),
            |streams| {
                let mut collector = darshan::Collector::new("bench", 50);
                sim.run_traced(streams, &cfg, 1, &mut collector);
                let log = collector.finish();
                black_box(darshan::tables::to_tables(&log))
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_rag(c: &mut Criterion) {
    c.bench_function("rag/build_index", |b| {
        b.iter(|| black_box(RagExtractor::standard()))
    });
    let extractor = RagExtractor::standard();
    c.bench_function("rag/retrieve_one_param", |b| {
        b.iter(|| black_box(extractor.retrieve_section("llite.statahead_max")))
    });
    c.bench_function("rag/full_extraction", |b| {
        b.iter(|| {
            let mut backend = SimLlm::new(ModelProfile::gpt_4o(), 1);
            black_box(extractor.extract(&mut backend))
        })
    });
}

fn bench_rules(c: &mut Criterion) {
    use agents::{ContextTag, Guidance, Rule, RuleSet};
    let tags = [ContextTag::LargeSequentialWrites, ContextTag::SharedFile];
    c.bench_function("rules/merge_and_match", |b| {
        b.iter(|| {
            let mut rs = RuleSet::new();
            for i in 0..50i64 {
                rs.merge(vec![Rule::new(
                    "osc.max_rpcs_in_flight",
                    Guidance::RaiseToAtLeast(8 + i),
                    &tags,
                )]);
            }
            black_box(rs.matching(&tags).len())
        })
    });
}

criterion_group!(
    benches,
    bench_simulator,
    bench_darshan,
    bench_rag,
    bench_rules
);
criterion_main!(benches);
