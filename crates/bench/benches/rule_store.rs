//! Rule-store scaling: what a warm campaign round pays to hand each cell
//! its starting rules, flat clone vs sharded snapshot.
//!
//! The flat path clones every rule (`RuleSet::clone`, O(n)); the sharded
//! path bumps one `Arc` per store (`ShardedRuleStore::snapshot`, O(1)).
//! Matching is measured too: the sharded store scores whole shards from
//! their signatures and skips non-overlapping ones without touching rules.
//!
//! This is the repository's first recorded BENCH baseline — see
//! `CHANGES.md` for the numbers at 1k/10k/100k rules.

use agents::{ContextTag, Guidance, Rule, RuleSet, ShardedRuleStore};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// `n` distinct rules spread over the 9×9 tag-pair signature space (built
/// directly, not via `merge`, so setup stays O(n) at 100k).
fn synth_rules(n: usize) -> RuleSet {
    let all = ContextTag::all();
    let params = [
        "stripe_count",
        "stripe_size",
        "osc.max_rpcs_in_flight",
        "osc.max_dirty_mb",
        "llite.statahead_max",
    ];
    let rules = (0..n)
        .map(|i| {
            let a = all[i % all.len()];
            let b = all[(i / all.len()) % all.len()];
            let tags = if a == b { vec![a] } else { vec![a, b] };
            Rule::new(
                params[i % params.len()],
                Guidance::RaiseToAtLeast((i as i64 % 4096) + 1),
                &tags,
            )
        })
        .collect();
    RuleSet { rules }
}

fn bench_snapshot_vs_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_store");
    group.sample_size(10);
    for n in SIZES {
        let flat = synth_rules(n);
        let store = ShardedRuleStore::from_rule_set(&flat);
        group.bench_function(&format!("clone_flat/{n}"), |b| {
            b.iter(|| black_box(flat.clone()))
        });
        group.bench_function(&format!("snapshot_sharded/{n}"), |b| {
            b.iter(|| black_box(store.snapshot()))
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_store_matching");
    group.sample_size(10);
    let probe = [ContextTag::LargeSequentialWrites, ContextTag::SharedFile];
    for n in SIZES {
        let flat = synth_rules(n);
        let snapshot = ShardedRuleStore::from_rule_set(&flat).snapshot();
        group.bench_function(&format!("flat/{n}"), |b| {
            b.iter(|| black_box(flat.matching(&probe).len()))
        });
        group.bench_function(&format!("sharded/{n}"), |b| {
            b.iter(|| black_box(snapshot.matching(&probe).len()))
        });
    }
    group.finish();
}

fn bench_cow_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_store_merge");
    group.sample_size(10);
    // One round's learnings merged into a large store with a live
    // snapshot: copy-on-write must touch only the destination shards.
    let base = ShardedRuleStore::from_rule_set(&synth_rules(100_000));
    let batch: Vec<Rule> = synth_rules(8).rules;
    group.bench_function("merge_8_into_100k_under_snapshot", |b| {
        b.iter_batched(
            || base.clone(),
            |mut store| {
                let snap = store.snapshot();
                store.merge(batch.clone());
                black_box((snap.len(), store.len()))
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_vs_clone,
    bench_matching,
    bench_cow_merge
);
criterion_main!(benches);
