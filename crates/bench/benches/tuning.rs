//! Criterion benchmark of the end-to-end tuning loop (scaled workloads):
//! the per-figure wall cost of one complete STELLAR tuning run, and the
//! expert-oracle evaluation budget for contrast.

use agents::RuleSet;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stellar::baselines::expert_oracle;
use stellar::Stellar;
use workloads::WorkloadKind;

fn bench_tuning_run(c: &mut Criterion) {
    let engine = Stellar::standard();
    let mut group = c.benchmark_group("tuning_run");
    group.sample_size(10);
    for kind in [WorkloadKind::Ior16M, WorkloadKind::MdWorkbench8K] {
        let w = kind.spec().scaled(0.08);
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut rules = RuleSet::new();
                black_box(engine.tune(w.as_ref(), &mut rules, 1))
            })
        });
    }
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let engine = Stellar::standard();
    let w = WorkloadKind::Ior16M.spec().scaled(0.05);
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("expert_oracle_1pass", |b| {
        b.iter(|| black_box(expert_oracle(engine.sim(), w.as_ref(), 1, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_tuning_run, bench_oracle);
criterion_main!(benches);
