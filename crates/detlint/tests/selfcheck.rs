//! Workspace self-check and in-memory mutation canary.
//!
//! The self-check pins the repo's own determinism contract: the committed
//! tree must lint clean under the committed `detlint.toml`. The canary is
//! the inverse proof — injecting a forbidden construct into a canonical
//! path MUST produce a violation, so a lexer or rule regression that makes
//! detlint blind fails the suite instead of passing silently.

use std::path::Path;

use detlint::config::Config;
use detlint::rules::{lint_file, lint_files};
use detlint::walk::collect_workspace;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn committed_config() -> Config {
    let toml = std::fs::read_to_string(workspace_root().join("detlint.toml"))
        .expect("detlint.toml readable");
    Config::parse(&toml).expect("detlint.toml parses")
}

#[test]
fn workspace_lints_clean() {
    let files = collect_workspace(workspace_root()).expect("workspace walk");
    assert!(
        files.len() > 50,
        "workspace walk found only {} files — skip list too broad?",
        files.len()
    );
    let diags = lint_files(&files, &committed_config()).expect("config validates");
    assert!(
        diags.is_empty(),
        "workspace must lint clean; run `cargo run -p detlint` for detail:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Mutation canary: the real `engine.rs` (a canonical-path file) with a
/// wall-clock read appended must trip D001 at exactly the appended line.
#[test]
fn canary_injected_wall_clock_is_caught() {
    let path = "crates/pfs/src/model/engine.rs";
    let real = std::fs::read_to_string(workspace_root().join(path)).expect("engine.rs readable");
    let mutated =
        format!("{real}\nfn _detlint_canary() {{ let _ = std::time::Instant::now(); }}\n");
    let canary_line = real.lines().count() + 2;

    // The pristine file is clean...
    let clean = lint_file(path, &real, &committed_config());
    assert!(
        clean.is_empty(),
        "pristine engine.rs must be clean: {clean:?}"
    );

    // ...and the mutated one is caught, at the injected line.
    let diags = lint_file(path, &mutated, &committed_config());
    assert_eq!(diags.len(), 1, "canary must fire exactly once: {diags:?}");
    assert_eq!(diags[0].rule, "D001");
    assert_eq!(diags[0].line, canary_line, "canary fired on the wrong line");
}

/// The same canary for every other rule, against its own forbidden
/// construct, so no rule can rot into a no-op.
#[test]
fn canary_every_rule_fires_on_a_canonical_path() {
    let cfg = committed_config();
    let cases: &[(&str, &str)] = &[
        ("D001", "fn c1() { let _ = std::time::Instant::now(); }"),
        (
            "D002",
            "use std::collections::HashMap;\nfn c2(m: HashMap<u8, u8>) { for _ in m.iter() {} }",
        ),
        ("D003", "fn c3() { let _ = thread_rng(); }"),
        (
            "D004",
            "fn c4() { let _ = std::thread::available_parallelism(); }",
        ),
        ("D005", "fn c5() { println!(\"x\"); }"),
    ];
    for (rule, src) in cases {
        let diags = lint_file("crates/pfs/src/model/engine.rs", src, &cfg);
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "{rule} canary did not fire: {diags:?}"
        );
    }
}

/// The allowlist layers must not be wider than intended: the committed
/// config waives D001 only for the perfsuite bench bin, not for canonical
/// crates.
#[test]
fn committed_allowlists_are_narrow() {
    let cfg = committed_config();
    let src = "fn main() { let _ = std::time::Instant::now(); }";
    let waived = lint_file("crates/bench/src/bin/perfsuite.rs", src, &cfg);
    assert!(waived.is_empty(), "perfsuite is allowlisted: {waived:?}");
    for path in [
        "crates/simcore/src/engine.rs",
        "crates/stellar/src/sched.rs",
        "crates/agents/src/tuning.rs",
    ] {
        let diags = lint_file(path, src, &cfg);
        assert!(
            diags.iter().any(|d| d.rule == "D001"),
            "{path} must not be waived: {diags:?}"
        );
    }
}
