//! Workspace self-check and in-memory mutation canary.
//!
//! The self-check pins the repo's own determinism contract: the committed
//! tree must lint clean under the committed `detlint.toml`. The canary is
//! the inverse proof — injecting a forbidden construct into a canonical
//! path MUST produce a violation, so a lexer or rule regression that makes
//! detlint blind fails the suite instead of passing silently.

use std::path::Path;

use detlint::config::Config;
use detlint::rules::{lint_file, lint_files};
use detlint::walk::collect_workspace;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn committed_config() -> Config {
    let toml = std::fs::read_to_string(workspace_root().join("detlint.toml"))
        .expect("detlint.toml readable");
    Config::parse(&toml).expect("detlint.toml parses")
}

#[test]
fn workspace_lints_clean() {
    let files = collect_workspace(workspace_root()).expect("workspace walk");
    assert!(
        files.len() > 50,
        "workspace walk found only {} files — skip list too broad?",
        files.len()
    );
    let diags = lint_files(&files, &committed_config()).expect("config validates");
    assert!(
        diags.is_empty(),
        "workspace must lint clean; run `cargo run -p detlint` for detail:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Mutation canary: the real `engine.rs` (a canonical-path file) with a
/// wall-clock read appended must trip D001 at exactly the appended line.
#[test]
fn canary_injected_wall_clock_is_caught() {
    let path = "crates/pfs/src/model/engine.rs";
    let real = std::fs::read_to_string(workspace_root().join(path)).expect("engine.rs readable");
    let mutated =
        format!("{real}\nfn _detlint_canary() {{ let _ = std::time::Instant::now(); }}\n");
    let canary_line = real.lines().count() + 2;

    // The pristine file is clean...
    let clean = lint_file(path, &real, &committed_config());
    assert!(
        clean.is_empty(),
        "pristine engine.rs must be clean: {clean:?}"
    );

    // ...and the mutated one is caught, at the injected line.
    let diags = lint_file(path, &mutated, &committed_config());
    assert_eq!(diags.len(), 1, "canary must fire exactly once: {diags:?}");
    assert_eq!(diags[0].rule, "D001");
    assert_eq!(diags[0].line, canary_line, "canary fired on the wrong line");
}

/// The same canary for every other rule, against its own forbidden
/// construct, so no rule can rot into a no-op.
#[test]
fn canary_every_rule_fires_on_a_canonical_path() {
    let cfg = committed_config();
    let cases: &[(&str, &str)] = &[
        ("D001", "fn c1() { let _ = std::time::Instant::now(); }"),
        (
            "D002",
            "use std::collections::HashMap;\nfn c2(m: HashMap<u8, u8>) { for _ in m.iter() {} }",
        ),
        ("D003", "fn c3() { let _ = thread_rng(); }"),
        (
            "D004",
            "fn c4() { let _ = std::thread::available_parallelism(); }",
        ),
        ("D005", "fn c5() { println!(\"x\"); }"),
        (
            "D006",
            "fn c6(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
        ),
        (
            "D007",
            "fn c7(rx: std::sync::mpsc::Receiver<u8>) { while rx.recv().is_ok() {} }",
        ),
        ("D008", "fn c8() { let _ = std::env::var(\"X\"); }"),
    ];
    assert_eq!(cases.len(), detlint::RULES.len(), "one canary per rule");
    for (rule, src) in cases {
        let diags = lint_file("crates/pfs/src/model/engine.rs", src, &cfg);
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "{rule} canary did not fire: {diags:?}"
        );
    }
}

/// The forbidden statement each rule's whole-workspace canary injects
/// into a cone function body (all valid inside `Model::run`).
const BODY_CANARIES: &[(&str, &str)] = &[
    ("D001", "let _c = std::time::Instant::now();"),
    (
        "D002",
        "let _m: std::collections::HashMap<u8, u8> = Default::default(); \
         for _ in _m.iter() {}",
    ),
    ("D003", "let _c = thread_rng();"),
    ("D004", "let _c = std::thread::available_parallelism();"),
    ("D005", "println!(\"canary\");"),
    (
        "D006",
        "let mut _v = vec![0.0f64]; _v.sort_by(|a, b| a.partial_cmp(b).unwrap());",
    ),
    (
        "D007",
        "let (_tx, _rx) = std::sync::mpsc::channel::<u8>(); while _rx.try_recv().is_ok() {}",
    ),
    ("D008", "let _c = std::env::var(\"DETLINT_CANARY\");"),
];

/// Whole-workspace mutation canary: inject each rule's forbidden
/// construct INTO the body of `Model::run` — a function on the canonical
/// cone — and lint via `lint_files`, the cone-gated entry point CI uses.
/// This is the end-to-end proof that the cone reaches real emit paths:
/// a taint regression that shrinks the cone fails here, not in CI.
#[test]
fn canary_body_injection_fires_through_the_cone() {
    let cfg = committed_config();
    let files = collect_workspace(workspace_root()).expect("workspace walk");
    let path = "crates/pfs/src/model/engine.rs";
    let idx = files
        .iter()
        .position(|(p, _)| p == path)
        .expect("engine.rs in workspace walk");
    let anchor = "pub fn run(mut self, streams: Vec<RankStream>) -> (Duration, Diagnostics) {";
    assert!(
        files[idx].1.contains(anchor),
        "injection anchor moved; update the canary"
    );

    for (rule, stmt) in BODY_CANARIES {
        let mut mutated = files.clone();
        mutated[idx].1 = files[idx]
            .1
            .replace(anchor, &format!("{anchor}\n        {stmt}"));
        let diags = lint_files(&mutated, &cfg).expect("config validates");
        assert!(
            diags.iter().any(|d| d.rule == *rule && d.path == path),
            "{rule} body canary did not fire through the cone: {diags:?}"
        );
    }
}

/// The inverse: the same forbidden statements in a function nothing
/// calls sit OUTSIDE the canonical cone, and workspace-mode linting must
/// stay silent — that is the cone gate working, not a blind spot
/// (`canary_body_injection_fires_through_the_cone` proves the rules
/// still see cone code).
#[test]
fn canary_uncalled_fn_is_outside_the_cone() {
    let cfg = committed_config();
    let files = collect_workspace(workspace_root()).expect("workspace walk");
    let path = "crates/pfs/src/model/engine.rs";
    let idx = files
        .iter()
        .position(|(p, _)| p == path)
        .expect("engine.rs in workspace walk");

    for (rule, stmt) in BODY_CANARIES {
        let mut mutated = files.clone();
        mutated[idx]
            .1
            .push_str(&format!("\nfn _detlint_dead_canary() {{ {stmt} }}\n"));
        let diags = lint_files(&mutated, &cfg).expect("config validates");
        assert!(
            !diags.iter().any(|d| d.path == path),
            "{rule} fired on an uncalled fn — cone gate broken: {diags:?}"
        );
    }
}

/// A detlint.toml entry whose glob matches no cone module is dead weight
/// and must be reported as a stale waiver, at the entry's own line.
#[test]
fn fabricated_stale_entry_is_reported() {
    let toml = std::fs::read_to_string(workspace_root().join("detlint.toml"))
        .expect("detlint.toml readable");
    let stale = format!("{toml}\n[rules.D001]\nallow = [\"no::such::module\"]\n");
    let cfg = Config::parse(&stale).expect("augmented config parses");
    let files = collect_workspace(workspace_root()).expect("workspace walk");
    let diags = lint_files(&files, &cfg).expect("config validates");
    let stale_diags: Vec<_> = diags.iter().filter(|d| d.path == "detlint.toml").collect();
    assert_eq!(
        stale_diags.len(),
        1,
        "exactly the fabricated entry: {diags:?}"
    );
    assert!(stale_diags[0].message.contains("no::such::module"));
    assert!(stale_diags[0].message.contains("stale"));
    // The committed entries stay live — no other diagnostics appear.
    assert_eq!(
        diags.len(),
        1,
        "committed config must stay clean: {diags:?}"
    );
}

/// The allowlist layers must not be wider than intended: the committed
/// config waives D001 only for the perfsuite bench bin, not for canonical
/// crates.
#[test]
fn committed_allowlists_are_narrow() {
    let cfg = committed_config();
    let src = "fn main() { let _ = std::time::Instant::now(); }";
    let waived = lint_file("crates/bench/src/bin/perfsuite.rs", src, &cfg);
    assert!(waived.is_empty(), "perfsuite is allowlisted: {waived:?}");
    for path in [
        "crates/simcore/src/engine.rs",
        "crates/stellar/src/sched.rs",
        "crates/agents/src/tuning.rs",
    ] {
        let diags = lint_file(path, src, &cfg);
        assert!(
            diags.iter().any(|d| d.rule == "D001"),
            "{path} must not be waived: {diags:?}"
        );
    }
}
