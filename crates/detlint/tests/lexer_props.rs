//! Property tests for the lint lexer: the linter's soundness rests on the
//! lexer (a) never panicking, (b) partitioning its input exactly, and
//! (c) keeping comment/string contents out of the code text rules match.

use detlint::lexer::{code_text, lex, LineIndex, TokenKind};
use proptest::prelude::*;

/// Rust-ish source soup: heavy on the delimiters the lexer must get right
/// (quotes, slashes, stars, hashes, backslashes, `r`/`b` prefixes,
/// newlines), plus identifier characters and a multi-byte char.
fn soup() -> impl Strategy<Value = String> {
    // NB: a normal (escaped) string so `\n` is a real newline and `\\` a
    // real backslash in the character class.
    "[abrz_0-9\"'/*\\\\#\n ({})!:;.é]{0,120}"
}

proptest! {
    /// The lexer never panics and always partitions `0..len` exactly:
    /// tokens are adjacent, in order, gap-free, and end at EOF.
    #[test]
    fn lex_partitions_arbitrary_input(src in soup()) {
        let tokens = lex(&src);
        let mut pos = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, pos, "gap/overlap at {} in {:?}", pos, src);
            prop_assert!(t.end >= t.start);
            // Every boundary must be a char boundary (slicing must not panic).
            prop_assert!(src.is_char_boundary(t.start));
            prop_assert!(src.is_char_boundary(t.end));
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len());
        // Code spans are nonempty and alternate with non-code spans is not
        // required, but no *empty* token may appear.
        for t in &tokens {
            prop_assert!(t.end > t.start, "empty token in {:?}", src);
        }
    }

    /// A marker planted inside a line comment, block comment, string, or
    /// raw string never reaches the code text, while the same marker in
    /// plain code always does.
    #[test]
    fn literal_and_comment_contents_are_excluded(prefix in soup(), suffix in soup()) {
        const MARKER: &str = "Instant::now";
        // Neutralize accidental marker-forming or context-opening tails:
        // place each probe on its own line, closing nothing.
        let cases = [
            (format!("{prefix}\n// x {MARKER} y\n{suffix}"), false),
            (format!("{prefix}\n/* x {MARKER} y */\n{suffix}"), false),
            (format!("{prefix}\n\"x {MARKER} y\"\n{suffix}"), false),
            (format!("{prefix}\nr##\"x {MARKER} y\"##\n{suffix}"), false),
        ];
        for (src, _) in &cases {
            // The prefix soup may itself open a string/comment that swallows
            // our probe — detect that by checking the probe line's first
            // token. If the newline before the probe is inside code, the
            // probe's container controls visibility.
            let probe_at = src.find(MARKER).unwrap();
            let tokens = lex(src);
            let container = tokens.iter().find(|t| t.start <= probe_at && probe_at < t.end).unwrap();
            if container.kind != TokenKind::Code {
                // Marker landed in a non-code token: must be invisible to rules.
                let code = code_text(src, &tokens);
                // It may still appear if the *suffix* soup spells it out — it
                // cannot, since the soup alphabet has no uppercase letters.
                prop_assert!(!code.contains(MARKER), "leaked from {:?}", src);
            }
        }
        // And in plain code it is always visible.
        let src = format!("{prefix}\nlet t = {MARKER}();\n");
        let tokens = lex(&src);
        let probe_at = src.rfind(MARKER).unwrap();
        let container = tokens.iter().find(|t| t.start <= probe_at && probe_at < t.end).unwrap();
        if container.kind == TokenKind::Code {
            prop_assert!(code_text(&src, &tokens).contains(MARKER));
        }
    }

    /// `line_col` round-trips: converting any char-boundary offset to
    /// (line, col) and recomputing the offset from the line start recovers
    /// the original offset.
    #[test]
    fn line_col_round_trips(src in soup(), frac in 0.0f64..1.0) {
        let index = LineIndex::new(&src);
        // Pick a char-boundary offset deterministically from `frac`.
        let mut offset = (src.len() as f64 * frac) as usize;
        while offset < src.len() && !src.is_char_boundary(offset) {
            offset += 1;
        }
        let (line, col) = index.line_col(&src, offset);
        prop_assert!(line >= 1 && col >= 1);
        let start = index.line_start(line).unwrap();
        // Walk (col - 1) characters forward from the line start.
        let recovered = src[start..]
            .char_indices()
            .nth(col - 1)
            .map(|(i, _)| start + i)
            .unwrap_or(src.len());
        prop_assert_eq!(recovered, offset.min(src.len()), "src {:?} line {} col {}", src, line, col);
    }

    /// Lexing is deterministic: two runs produce identical tokens.
    #[test]
    fn lex_is_deterministic(src in soup()) {
        prop_assert_eq!(lex(&src), lex(&src));
    }
}
