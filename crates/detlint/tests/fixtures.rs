//! Per-rule fixture triples: every rule is exercised with a violating
//! source (exact diagnostic asserted), an allowlisted variant (waived by a
//! `detlint.toml` module glob), and an annotated variant (waived by an
//! inline `detlint::allow` with a reason). This is the proof that each
//! rule is *live* — a rule that silently stops matching fails here.

use detlint::config::Config;
use detlint::rules::{lint_file, Diagnostic, META_RULE};

const FIXTURE_PATH: &str = "crates/pfs/src/fixture.rs";

fn empty_cfg() -> Config {
    Config::parse("").expect("empty config parses")
}

fn cfg_allowing(rule: &str) -> Config {
    Config::parse(&format!("[rules.{rule}]\nallow = [\"pfs::fixture\"]\n"))
        .expect("fixture config parses")
}

/// Run the triple for one rule: `violating` must produce exactly the
/// expected diagnostics; the same source must be clean under a module
/// allowlist; `annotated` (same code plus an inline waiver) must be clean
/// under the empty config — including no `DLINT` unused-annotation noise.
fn check_triple(rule: &str, violating: &str, annotated: &str, expect: &[(usize, usize)]) {
    let got = lint_file(FIXTURE_PATH, violating, &empty_cfg());
    let positions: Vec<(usize, usize)> = got.iter().map(|d| (d.line, d.col)).collect();
    assert_eq!(positions, expect, "{rule} violating fixture: {got:?}");
    for d in &got {
        assert_eq!(d.rule, rule);
        assert_eq!(d.path, FIXTURE_PATH);
    }

    let waived = lint_file(FIXTURE_PATH, violating, &cfg_allowing(rule));
    assert!(waived.is_empty(), "{rule} allowlisted fixture: {waived:?}");

    let annotated_diags = lint_file(FIXTURE_PATH, annotated, &empty_cfg());
    assert!(
        annotated_diags.is_empty(),
        "{rule} annotated fixture (waiver must bind and count as used): {annotated_diags:?}"
    );
}

#[test]
fn d001_wall_clock() {
    let violating = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
    let annotated = "fn f() {\n    // detlint::allow(D001): fixture models a timing sidecar\n    let t = std::time::Instant::now();\n}\n";
    check_triple("D001", violating, annotated, &[(2, 24)]);

    // Exact rendered diagnostic, end to end.
    let d = &lint_file(FIXTURE_PATH, violating, &empty_cfg())[0];
    assert_eq!(
        d.to_string(),
        "crates/pfs/src/fixture.rs:2:24 [D001] wall-clock read `Instant::now` \
         outside the timing-sidecar allowlist (canonical output must not depend \
         on host time)"
    );
}

#[test]
fn d001_system_time() {
    let violating = "fn f() {\n    let t = std::time::SystemTime::now();\n}\n";
    let annotated = "fn f() {\n    // detlint::allow(D001): fixture models a timing sidecar\n    let t = std::time::SystemTime::now();\n}\n";
    check_triple("D001", violating, annotated, &[(2, 24)]);
}

#[test]
fn d002_hash_iteration() {
    let violating = concat!(
        "use std::collections::HashMap;\n",
        "fn f(m: HashMap<u32, u32>) -> u32 {\n",
        "    let mut s = 0;\n",
        "    for (_, v) in m.iter() {\n",
        "        s += v;\n",
        "    }\n",
        "    s\n",
        "}\n",
    );
    let annotated = concat!(
        "use std::collections::HashMap;\n",
        "fn f(m: HashMap<u32, u32>) -> u32 {\n",
        "    let mut s = 0;\n",
        "    // detlint::allow(D002): sum is commutative, order cannot leak\n",
        "    for (_, v) in m.iter() {\n",
        "        s += v;\n",
        "    }\n",
        "    s\n",
        "}\n",
    );
    check_triple("D002", violating, annotated, &[(4, 20)]);
}

#[test]
fn d002_visibly_sorted_is_waived() {
    // The third waiver channel, specific to D002: a sort within the window.
    let src = concat!(
        "use std::collections::HashMap;\n",
        "fn f(m: HashMap<u32, u32>) -> Vec<u32> {\n",
        "    let mut ks: Vec<u32> = m.keys().copied().collect();\n",
        "    ks.sort_unstable();\n",
        "    ks\n",
        "}\n",
    );
    let got = lint_file(FIXTURE_PATH, src, &empty_cfg());
    assert!(got.is_empty(), "sorted collect must be waived: {got:?}");
}

#[test]
fn d003_foreign_rng() {
    let violating = "fn f() {\n    let s = StdRng::seed_from_u64(7);\n}\n";
    let annotated = "fn f() {\n    // detlint::allow(D003): fixture exercises the foreign-RNG shim\n    let s = StdRng::seed_from_u64(7);\n}\n";
    check_triple("D003", violating, annotated, &[(2, 13)]);
}

#[test]
fn d004_host_parallelism() {
    let violating = "fn f() {\n    let n = std::thread::available_parallelism();\n}\n";
    let annotated = "fn f() {\n    // detlint::allow(D004): fixture models the documented sched fallback\n    let n = std::thread::available_parallelism();\n}\n";
    check_triple("D004", violating, annotated, &[(2, 26)]);
}

#[test]
fn d005_stdout_write() {
    let violating = "fn f() {\n    println!(\"hi\");\n}\n";
    let annotated = "fn f() {\n    // detlint::allow(D005): fixture is a table emitter\n    println!(\"hi\");\n}\n";
    check_triple("D005", violating, annotated, &[(2, 5)]);

    let d = &lint_file(FIXTURE_PATH, violating, &empty_cfg())[0];
    assert_eq!(
        d.to_string(),
        "crates/pfs/src/fixture.rs:2:5 [D005] stdout write outside the CLI bins \
         (campaign stdout is a byte-identical artifact; telemetry goes to stderr)"
    );
}

#[test]
fn d005_bin_paths_waived_by_committed_config() {
    // The committed detlint.toml must keep waiving the CLI bins.
    let toml = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../detlint.toml"))
        .expect("committed detlint.toml readable");
    let cfg = Config::parse(&toml).expect("committed detlint.toml parses");
    let src = "fn main() {\n    println!(\"table\");\n}\n";
    let got = lint_file("crates/stellar/src/bin/stellar-tune.rs", src, &cfg);
    assert!(got.is_empty(), "bin stdout must be allowlisted: {got:?}");
    // ...while the same source in a library module still violates.
    let lib = lint_file("crates/stellar/src/sched.rs", src, &cfg);
    assert_eq!(lib.len(), 1);
    assert_eq!(lib[0].rule, "D005");
}

#[test]
fn d006_partial_float_ordering() {
    let violating = concat!(
        "fn f(v: &mut Vec<f64>) {\n",
        "    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
        "}\n",
    );
    let annotated = concat!(
        "fn f(v: &mut Vec<f64>) {\n",
        "    // detlint::allow(D006): inputs are clamped finite one line up\n",
        "    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
        "}\n",
    );
    check_triple("D006", violating, annotated, &[(2, 24)]);

    let d = &lint_file(FIXTURE_PATH, violating, &empty_cfg())[0];
    assert!(
        d.message.contains("total_cmp"),
        "D006 must point at the fix: {}",
        d.message
    );
}

#[test]
fn d006_total_cmp_is_clean() {
    let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n";
    let got = lint_file(FIXTURE_PATH, src, &empty_cfg());
    assert!(
        got.is_empty(),
        "total_cmp is the fix, not a finding: {got:?}"
    );
}

#[test]
fn d007_completion_order_merge() {
    let violating = concat!(
        "fn f(rx: std::sync::mpsc::Receiver<u64>) -> Vec<u64> {\n",
        "    let mut out = Vec::new();\n",
        "    while let Ok(v) = rx.recv() {\n",
        "        out.push(v);\n",
        "    }\n",
        "    out\n",
        "}\n",
    );
    let annotated = concat!(
        "fn f(rx: std::sync::mpsc::Receiver<u64>) -> Vec<u64> {\n",
        "    let mut out = Vec::new();\n",
        "    // detlint::allow(D007): results re-sorted into grid order below\n",
        "    while let Ok(v) = rx.recv() {\n",
        "        out.push(v);\n",
        "    }\n",
        "    out\n",
        "}\n",
    );
    check_triple("D007", violating, annotated, &[(3, 26)]);
}

#[test]
fn d007_string_join_is_clean() {
    // `.join(", ")` on a slice of strings is not a thread join; the
    // empty-argument check must read the raw source, where the string
    // literal is visible.
    let src = "fn f(v: &[String]) -> String {\n    v.join(\", \")\n}\n";
    let got = lint_file(FIXTURE_PATH, src, &empty_cfg());
    assert!(got.is_empty(), "string join is not a thread join: {got:?}");
}

#[test]
fn d008_environment_read() {
    let violating = "fn f() -> Option<String> {\n    std::env::var(\"THREADS\").ok()\n}\n";
    let annotated = concat!(
        "fn f() -> Option<String> {\n",
        "    // detlint::allow(D008): knob echoed into the run header, not records\n",
        "    std::env::var(\"THREADS\").ok()\n",
        "}\n",
    );
    check_triple("D008", violating, annotated, &[(2, 10)]);
}

#[test]
fn annotation_without_reason_is_a_meta_violation() {
    let src = "fn f() {\n    // detlint::allow(D001)\n    let t = std::time::Instant::now();\n}\n";
    let got = lint_file(FIXTURE_PATH, src, &empty_cfg());
    let rules: Vec<&str> = got.iter().map(|d| d.rule.as_str()).collect();
    // The waiver is malformed, so it must NOT suppress the D001 — and it
    // must itself be reported.
    assert!(rules.contains(&META_RULE), "missing DLINT: {got:?}");
    assert!(
        rules.contains(&"D001"),
        "malformed waiver must not waive: {got:?}"
    );
}

#[test]
fn unused_annotation_is_a_meta_violation() {
    let src = "fn f() {\n    // detlint::allow(D001): nothing here needs it\n    let x = 1;\n}\n";
    let got = lint_file(FIXTURE_PATH, src, &empty_cfg());
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].rule, META_RULE);
    assert!(got[0].message.contains("unused"));
}

#[test]
fn diagnostics_serialize_for_the_json_format() {
    let violating = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
    let got = lint_file(FIXTURE_PATH, violating, &empty_cfg());
    let json = serde_json::to_string(&got[0]).expect("diagnostic serializes");
    for needle in ["\"path\"", "\"line\"", "\"col\"", "\"rule\"", "\"D001\""] {
        assert!(json.contains(needle), "{needle} missing from {json}");
    }
    let _ = Diagnostic {
        path: String::new(),
        line: 1,
        col: 1,
        rule: "D001".into(),
        message: String::new(),
    };
}
