//! Property tests for the canonical-cone taint pass: on arbitrary
//! generated call graphs (cycles, self-calls, disconnected islands) the
//! cone computation must (a) terminate, (b) be closed under the edges
//! that define it, and (c) be invariant to the order files are supplied
//! in — the linter's verdicts may not depend on directory enumeration.

use detlint::graph::CallGraph;
use detlint::taint::Cone;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Three homes for generated functions. The first is a seed module
/// (matched by `SEED_GLOBS`' `stellar::obs*`); the others are ordinary
/// workspace modules.
const FILES: [&str; 3] = [
    "crates/stellar/src/obs.rs",
    "crates/pfs/src/model.rs",
    "crates/agents/src/plan.rs",
];

/// Render `n` functions (`f0..f{n-1}`) distributed over [`FILES`] by
/// `homes`, each body calling exactly the `edges` that leave it. Bare
/// names are globally unique, so every edge resolves regardless of which
/// file the callee landed in.
fn render(n: usize, homes: &[usize], edges: &[(usize, usize)]) -> Vec<(String, String)> {
    let mut bodies: Vec<String> = vec![String::new(); FILES.len()];
    for i in 0..n {
        let mut body = format!("pub fn f{i}() {{\n");
        for &(a, b) in edges {
            if a == i {
                body.push_str(&format!("    f{b}();\n"));
            }
        }
        body.push_str("}\n");
        bodies[homes[i]].push_str(&body);
    }
    FILES
        .iter()
        .zip(bodies)
        .map(|(p, b)| (p.to_string(), b))
        .collect()
}

/// The cone as a set of qualified names — the stable identity that a
/// reordered file list must reproduce.
fn cone_names(files: &[(String, String)]) -> BTreeSet<String> {
    let g = CallGraph::build(files);
    let cone = Cone::compute(&g);
    cone.members()
        .map(|id| g.fns[id].qualified.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn taint_terminates_is_closed_and_order_invariant(
        n in 1usize..12,
        homes_raw in proptest::collection::vec(0usize..3, 12..13),
        edges_raw in proptest::collection::vec((0usize..12, 0usize..12), 0..40),
        perm in 0usize..6,
    ) {
        let homes = homes_raw[..n].to_vec();
        let edges: Vec<(usize, usize)> =
            edges_raw.iter().map(|&(a, b)| (a % n, b % n)).collect();
        let files = render(n, &homes, &edges);

        // (a) Termination: this returns even when `edges` forms cycles.
        let g = CallGraph::build(&files);
        let cone = Cone::compute(&g);

        // Every seed-module function is in the cone by definition...
        for (id, f) in g.fns.iter().enumerate() {
            if f.module == "stellar::obs" {
                prop_assert!(cone.contains(id), "seed {} not in cone", f.qualified);
            }
        }
        // ...as is every direct caller of one (ancestors feed the stream).
        for (id, f) in g.fns.iter().enumerate() {
            if g.callees[id]
                .iter()
                .any(|&c| g.fns[c].module == "stellar::obs")
            {
                prop_assert!(cone.contains(id), "seed caller {} not in cone", f.qualified);
            }
        }
        // (b) Closure: the cone is descendants-of-roots, so a member's
        // callees are always members — no edge may escape the cone.
        for id in cone.members() {
            for &callee in &g.callees[id] {
                prop_assert!(
                    cone.contains(callee),
                    "cone member {} has out-of-cone callee {}",
                    g.fns[id].qualified,
                    g.fns[callee].qualified
                );
            }
        }

        // (c) Input-order invariance: rotate/reverse the file list and
        // the member set (by qualified name) is unchanged.
        let mut shuffled = files.clone();
        shuffled.rotate_left(perm % files.len());
        if perm >= 3 {
            shuffled.reverse();
        }
        prop_assert_eq!(cone_names(&files), cone_names(&shuffled));
    }
}
