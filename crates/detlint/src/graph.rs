//! Workspace symbol index and conservative call graph.
//!
//! The cone analysis ([`crate::taint`]) needs to know, for every function
//! in the workspace, who calls it and whom it calls. This module builds
//! that graph from the [`crate::lexer`] token stream alone — no rustc, no
//! new dependencies — by recognising:
//!
//! - `fn` items, including methods (qualified by their enclosing
//!   `impl`/`trait` self type) and functions nested in inline `mod` blocks,
//! - `use` declarations (plain, `as` renames, nested `{...}` groups and
//!   glob imports), which feed path resolution,
//! - call expressions `path::to::f(...)` and method calls `recv.m(...)`,
//!   turbofish included.
//!
//! Resolution is **name + module-path based** and deliberately
//! conservative in the over-approximating direction:
//!
//! - a qualified call resolves to every workspace function whose qualified
//!   path ends with the call path (after `use`/`crate`/`self`/`super`
//!   expansion), falling back to the last two segments — so re-export
//!   paths like `stellar::JsonlEmitter::create` still reach
//!   `stellar::obs::JsonlEmitter::create`; a qualified call matching
//!   nothing in the workspace is external (std/vendored) and adds no edge;
//! - a bare call prefers same-module functions, then `use`-imported ones,
//!   and otherwise links **every** function of that name in the workspace;
//! - a method call `x.m(...)` links every workspace method named `m`
//!   regardless of receiver type (receiver types are not inferred).
//!
//! Over-approximation errs toward putting *more* functions in the
//! canonical cone, never fewer, which is the safe direction for a
//! determinism linter: a spurious edge can only make a rule fire where a
//! human must waive it, not hide a genuine violation.
//!
//! Everything is deterministic: files are indexed in sorted path order,
//! functions are numbered in that order, and edge sets are `BTreeSet`s.

use crate::lexer::{lex, LineIndex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// Index of a function in [`CallGraph::fns`].
pub type FnId = usize;

/// One indexed function (free function, method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`plan`, `on_event`, ...).
    pub name: String,
    /// Fully qualified path: module path, plus the `impl`/`trait` self
    /// type for methods (`stellar::sched::plan`,
    /// `stellar::obs::JsonlEmitter::event`).
    pub qualified: String,
    /// Module path only (no type segment, no fn name).
    pub module: String,
    /// Workspace-relative file the function lives in.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte range of the body in the file source (`{`..=`}`), or an empty
    /// range for bodyless trait signatures.
    pub body: (usize, usize),
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All indexed functions, in deterministic (file, offset) order.
    pub fns: Vec<FnDef>,
    /// Forward edges: `callees[f]` = functions `f` may call.
    pub callees: Vec<BTreeSet<FnId>>,
    /// Reverse edges: `callers[f]` = functions that may call `f`.
    pub callers: Vec<BTreeSet<FnId>>,
    /// Per-file function ids, for enclosing-function lookups.
    by_file: BTreeMap<String, Vec<FnId>>,
}

impl CallGraph {
    /// Build the graph for a set of `(path, contents)` files. The result
    /// is independent of the order `files` is given in: files are indexed
    /// in sorted path order.
    pub fn build(files: &[(String, String)]) -> CallGraph {
        let mut sorted: Vec<&(String, String)> = files.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));

        let mut g = CallGraph::default();
        let mut file_syms = Vec::new();
        for (path, src) in &sorted {
            let syms = index_file(path, src, &mut g);
            file_syms.push(syms);
        }
        g.callees = vec![BTreeSet::new(); g.fns.len()];
        g.callers = vec![BTreeSet::new(); g.fns.len()];

        // Name → defs map for resolution.
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, f) in g.fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(id);
        }

        for syms in &file_syms {
            for call in &syms.calls {
                let Some(caller) = call.caller else { continue };
                for callee in resolve(call, syms, &g, &by_name) {
                    if callee != caller {
                        g.callees[caller].insert(callee);
                    }
                }
            }
        }
        for (caller, outs) in g.callees.iter().enumerate() {
            for &callee in outs {
                g.callers[callee].insert(caller);
            }
        }
        g
    }

    /// The innermost function whose body contains `offset` in `file`.
    pub fn enclosing_fn(&self, file: &str, offset: usize) -> Option<FnId> {
        let ids = self.by_file.get(file)?;
        ids.iter()
            .copied()
            .filter(|&id| {
                let (s, e) = self.fns[id].body;
                s < offset && offset < e
            })
            .max_by_key(|&id| self.fns[id].body.0)
    }

    /// Ids of every function defined in `file`, in offset order.
    pub fn fns_in_file(&self, file: &str) -> &[FnId] {
        self.by_file.get(file).map(Vec::as_slice).unwrap_or(&[])
    }
}

// ---------------------------------------------------------------------------
// Module paths (shared with the rule engine)
// ---------------------------------------------------------------------------

/// Package name of the workspace-root umbrella crate.
const UMBRELLA: &str = "stellar_repro";

/// Derive the crate-level module path for a workspace-relative file path.
pub fn module_base(path: &str) -> String {
    let norm = |s: &str| s.replace('-', "_");
    let parts: Vec<&str> = path.split('/').collect();
    let joined = |crate_name: &str, tail: &[&str]| -> String {
        let mut segs = vec![norm(crate_name)];
        for (i, p) in tail.iter().enumerate() {
            let is_last = i + 1 == tail.len();
            let p = p.strip_suffix(".rs").unwrap_or(p);
            if is_last && (p == "mod" || p == "lib") {
                continue;
            }
            segs.push(norm(p));
        }
        segs.join("::")
    };
    match parts.as_slice() {
        ["crates", c, "src", "main.rs"] => format!("{}::bin::main", norm(c)),
        ["crates", c, "src", "bin", rest @ ..] => {
            format!(
                "{}::bin::{}",
                norm(c),
                joined("", rest).trim_start_matches("::")
            )
        }
        ["crates", c, "src", rest @ ..] => joined(c, rest),
        ["crates", c, "benches", rest @ ..] => {
            format!(
                "{}::benches::{}",
                norm(c),
                joined("", rest).trim_start_matches("::")
            )
        }
        ["crates", c, "tests", rest @ ..] => {
            format!(
                "{}::tests::{}",
                norm(c),
                joined("", rest).trim_start_matches("::")
            )
        }
        ["src", rest @ ..] => joined(UMBRELLA, rest),
        ["tests", rest @ ..] => joined("tests", rest),
        ["examples", rest @ ..] => joined("examples", rest),
        _ => joined("", parts.as_slice())
            .trim_start_matches("::")
            .to_string(),
    }
}

/// An inline `mod name { ... }` block span.
pub struct ModSpan {
    /// Module name.
    pub name: String,
    /// Byte offset of the opening brace.
    pub start: usize,
    /// Byte offset of the closing brace.
    pub end: usize,
}

/// Find inline module blocks by scanning code tokens for `mod <ident> {`
/// and matching braces (only braces in code count, so string contents
/// cannot unbalance the scan).
pub fn inline_modules(src: &str, tokens: &[Token]) -> Vec<ModSpan> {
    let mut opens: Vec<(String, usize)> = Vec::new(); // (name, open-brace offset)
    for t in tokens {
        if t.kind != TokenKind::Code {
            continue;
        }
        let text = &src[t.start..t.end];
        let bytes = text.as_bytes();
        let mut from = 0usize;
        while let Some(rel) = text[from..].find("mod") {
            let at = from + rel;
            from = at + 3;
            let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            let after = at + 3;
            if !before_ok || after >= bytes.len() || !bytes[after].is_ascii_whitespace() {
                continue;
            }
            // Read the identifier after `mod`.
            let mut j = after;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if j == name_start {
                continue;
            }
            let name = text[name_start..j].to_string();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'{' {
                opens.push((name, t.start + j));
            }
        }
    }

    // Match each open brace with its close by walking all code braces once.
    let mut spans = Vec::new();
    let mut stack: Vec<(usize, Option<usize>)> = Vec::new(); // (offset, opens-index)
    let mut open_idx = 0usize;
    for t in tokens {
        if t.kind != TokenKind::Code {
            continue;
        }
        for (rel, b) in src.as_bytes()[t.start..t.end].iter().enumerate() {
            let off = t.start + rel;
            match b {
                b'{' => {
                    let tag = if open_idx < opens.len() && opens[open_idx].1 == off {
                        open_idx += 1;
                        Some(open_idx - 1)
                    } else {
                        None
                    };
                    stack.push((off, tag));
                }
                b'}' => {
                    if let Some((start, Some(i))) = stack.pop() {
                        spans.push(ModSpan {
                            name: opens[i].0.clone(),
                            start,
                            end: off,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    // Unclosed module blocks (truncated input): run to EOF.
    for (start, tag) in stack {
        if let Some(i) = tag {
            spans.push(ModSpan {
                name: opens[i].0.clone(),
                start,
                end: src.len(),
            });
        }
    }
    spans.sort_by_key(|s| s.start);
    spans
}

/// Full module path of a byte offset: file base plus enclosing inline mods.
pub fn module_at(base: &str, mods: &[ModSpan], offset: usize) -> String {
    let mut path = base.to_string();
    for m in mods {
        if m.start < offset && offset < m.end {
            path.push_str("::");
            path.push_str(&m.name);
        }
    }
    path
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

// ---------------------------------------------------------------------------
// Per-file symbol extraction
// ---------------------------------------------------------------------------

/// Code bytes of one file, flattened across tokens, with a map back to
/// source offsets. Comments and literals are gone, so scans here can never
/// match inside them, and constructs split by a comment re-join. Also used
/// by the D006–D008 scanners in [`crate::rules`].
pub(crate) struct CodeText {
    pub(crate) bytes: Vec<u8>,
    pub(crate) offs: Vec<usize>,
}

impl CodeText {
    pub(crate) fn new(src: &str, tokens: &[Token]) -> CodeText {
        let mut bytes = Vec::with_capacity(src.len());
        let mut offs = Vec::with_capacity(src.len());
        for t in tokens {
            if t.kind == TokenKind::Code {
                for (rel, &b) in src.as_bytes()[t.start..t.end].iter().enumerate() {
                    bytes.push(b);
                    offs.push(t.start + rel);
                }
            }
        }
        CodeText { bytes, offs }
    }

    fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Skip whitespace forward from `i`.
    pub(crate) fn skip_ws(&self, mut i: usize) -> usize {
        while i < self.len() && self.bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    }

    /// Skip whitespace backward from `i` (returns the index after the last
    /// non-whitespace byte before `i`).
    fn skip_ws_back(&self, mut i: usize) -> usize {
        while i > 0 && self.bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        i
    }

    /// Is `self.bytes[at..at+word.len()]` a word-bounded `word`?
    fn word_at(&self, at: usize, word: &str) -> bool {
        let w = word.as_bytes();
        if at + w.len() > self.len() || &self.bytes[at..at + w.len()] != w {
            return false;
        }
        let pre_ok = at == 0 || !is_ident_byte(self.bytes[at - 1]);
        let post_ok = at + w.len() >= self.len() || !is_ident_byte(self.bytes[at + w.len()]);
        pre_ok && post_ok
    }

    /// Read the identifier starting at `i`, if any.
    fn ident_at(&self, i: usize) -> Option<(usize, String)> {
        let mut j = i;
        while j < self.len() && is_ident_byte(self.bytes[j]) {
            j += 1;
        }
        if j == i || self.bytes[i].is_ascii_digit() {
            return None;
        }
        Some((j, String::from_utf8_lossy(&self.bytes[i..j]).into_owned()))
    }

    /// Matching close brace for the open brace at `i` (code-only braces).
    /// Returns the index of the `}`, or the end of input if unclosed.
    fn match_brace(&self, i: usize) -> usize {
        debug_assert_eq!(self.bytes[i], b'{');
        let mut depth = 0usize;
        let mut j = i;
        while j < self.len() {
            match self.bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.len().saturating_sub(1)
    }

    /// Matching close paren for the open paren at `i` (code-only parens).
    /// Returns the index of the `)`, or the end of input if unclosed.
    pub(crate) fn match_paren(&self, i: usize) -> usize {
        debug_assert_eq!(self.bytes[i], b'(');
        let mut depth = 0usize;
        let mut j = i;
        while j < self.len() {
            match self.bytes[j] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.len().saturating_sub(1)
    }

    /// Skip a balanced `<...>` starting at `i` (which must be `<`).
    /// `->` arrows inside (fn types) do not count as closers. Returns the
    /// index just past the closing `>`.
    fn skip_angles(&self, i: usize) -> usize {
        debug_assert_eq!(self.bytes[i], b'<');
        let mut depth = 0usize;
        let mut j = i;
        while j < self.len() {
            match self.bytes[j] {
                b'<' => depth += 1,
                b'>' if j > 0 && self.bytes[j - 1] == b'-' => {} // `->`
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                // A `(`, `{` or `;` at depth >0 means this was a comparison,
                // not generics; bail to avoid eating the rest of the file.
                b';' | b'{' => return i + 1,
                _ => {}
            }
            j += 1;
        }
        self.len()
    }
}

/// One call site found in a file.
struct CallSite {
    /// Enclosing function, if the call is inside one.
    caller: Option<FnId>,
    /// `true` for `.name(...)` method syntax.
    is_method: bool,
    /// Path segments (just the name for bare and method calls).
    path: Vec<String>,
}

/// Per-file symbols feeding resolution.
struct FileSyms {
    /// Module path of the file root.
    base: String,
    /// `use` alias → full path.
    uses: BTreeMap<String, String>,
    /// Glob-import prefixes (`use a::b::*` → `a::b`).
    glob_uses: Vec<String>,
    /// Calls found in this file.
    calls: Vec<CallSite>,
}

/// Rust keywords that look like call names but never are.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "ref", "mut",
    "move", "impl", "dyn", "where", "use", "pub", "crate", "super", "self", "Self", "mod", "trait",
    "struct", "enum", "union", "const", "static", "type", "unsafe", "extern", "await", "break",
    "continue", "box",
];

/// An `impl`/`trait` block span with its self-type name.
struct TypeSpan {
    name: String,
    /// Code-index range of the block body.
    start: usize,
    end: usize,
}

/// Index one file: append its `FnDef`s to `g` and return the symbols
/// needed for call resolution.
fn index_file(path: &str, src: &str, g: &mut CallGraph) -> FileSyms {
    let tokens = lex(src);
    let index = LineIndex::new(src);
    let mods = inline_modules(src, &tokens);
    let base = module_base(path);
    let code = CodeText::new(src, &tokens);

    let type_spans = find_type_spans(&code);
    let first_id = g.fns.len();

    // --- fn items ---
    let mut fn_code_spans: Vec<(usize, usize, FnId)> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !code.word_at(i, "fn") {
            i += 1;
            continue;
        }
        let kw = i;
        i += 2;
        let j = code.skip_ws(i);
        let Some((after_name, name)) = code.ident_at(j) else {
            continue; // `fn(` pointer type or malformed
        };
        // Find the body open brace: first `{` at paren depth 0; a `;`
        // first means a bodyless trait/extern signature.
        let mut k = after_name;
        let mut paren = 0usize;
        let mut body: Option<(usize, usize)> = None;
        while k < code.len() {
            match code.bytes[k] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren = paren.saturating_sub(1),
                b'<' if paren == 0 && k > 0 && code.bytes[k - 1] != b'-' => {
                    k = code.skip_angles(k);
                    continue;
                }
                b'{' if paren == 0 => {
                    body = Some((k, code.match_brace(k)));
                    break;
                }
                b';' if paren == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some((open, close)) = body else {
            i = after_name;
            continue;
        };
        let src_off = code.offs[kw];
        let (line, _) = index.line_col(src, src_off);
        let module = module_at(&base, &mods, src_off);
        let ty = type_spans
            .iter()
            .filter(|t| t.start < kw && kw < t.end)
            .max_by_key(|t| t.start);
        let qualified = match ty {
            Some(t) => format!("{module}::{}::{name}", t.name),
            None => format!("{module}::{name}"),
        };
        let id = g.fns.len();
        g.fns.push(FnDef {
            name,
            qualified,
            module,
            file: path.to_string(),
            line,
            body: (code.offs[open], code.offs[close]),
        });
        fn_code_spans.push((open, close, id));
        i = open + 1;
    }
    g.by_file
        .insert(path.to_string(), (first_id..g.fns.len()).collect());

    // --- use declarations ---
    let mut uses = BTreeMap::new();
    let mut glob_uses = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !code.word_at(i, "use") {
            i += 1;
            continue;
        }
        let start = i + 3;
        let mut end = start;
        while end < code.len() && code.bytes[end] != b';' {
            end += 1;
        }
        let decl = String::from_utf8_lossy(&code.bytes[start..end]).into_owned();
        parse_use(decl.trim(), &mut uses, &mut glob_uses);
        i = end + 1;
    }

    // --- call sites ---
    let enclosing = |at: usize| -> Option<FnId> {
        fn_code_spans
            .iter()
            .filter(|&&(s, e, _)| s < at && at < e)
            .max_by_key(|&&(s, _, _)| s)
            .map(|&(_, _, id)| id)
    };
    let mut calls = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !is_ident_byte(code.bytes[i]) || (i > 0 && is_ident_byte(code.bytes[i - 1])) {
            i += 1;
            continue;
        }
        let Some((after, name)) = code.ident_at(i) else {
            i += 1;
            continue;
        };
        let start = i;
        i = after;
        if KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // What follows: `(`, or a turbofish `::<...>` then `(`, else not a
        // call. A `!` marks a macro invocation — skipped.
        let mut k = code.skip_ws(after);
        if k + 2 < code.len() && code.bytes[k] == b':' && code.bytes[k + 1] == b':' {
            let t = code.skip_ws(k + 2);
            if t < code.len() && code.bytes[t] == b'<' {
                k = code.skip_ws(code.skip_angles(t));
            }
        }
        if k >= code.len() || code.bytes[k] != b'(' {
            continue;
        }
        // Definition sites (`fn name(`) are not calls.
        let before = code.skip_ws_back(start);
        if before >= 2 && code.word_at(before - 2, "fn") {
            continue;
        }
        if before > 0 && code.bytes[before - 1] == b'.' {
            calls.push(CallSite {
                caller: enclosing(start),
                is_method: true,
                path: vec![name],
            });
            continue;
        }
        // Collect leading `seg::` path segments (turbofish-tolerant).
        let mut segs = vec![name];
        let mut b = before;
        loop {
            if b < 2 || code.bytes[b - 1] != b':' || code.bytes[b - 2] != b':' {
                break;
            }
            b = code.skip_ws_back(b - 2);
            if b > 0 && code.bytes[b - 1] == b'>' {
                // `Vec::<u8>::new` — walk back over the generics.
                let mut depth = 0usize;
                while b > 0 {
                    match code.bytes[b - 1] {
                        b'>' => depth += 1,
                        b'<' => depth -= 1,
                        _ => {}
                    }
                    b -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b = code.skip_ws_back(b);
                if b >= 2 && code.bytes[b - 1] == b':' && code.bytes[b - 2] == b':' {
                    b = code.skip_ws_back(b - 2);
                } else {
                    break;
                }
            }
            let seg_end = b;
            while b > 0 && is_ident_byte(code.bytes[b - 1]) {
                b -= 1;
            }
            if b == seg_end {
                break;
            }
            let seg = String::from_utf8_lossy(&code.bytes[b..seg_end]).into_owned();
            segs.insert(0, seg);
            b = code.skip_ws_back(b);
        }
        calls.push(CallSite {
            caller: enclosing(start),
            is_method: false,
            path: segs,
        });
    }

    FileSyms {
        base,
        uses,
        glob_uses,
        calls,
    }
}

/// Find `impl`/`trait` block spans with their self-type names.
fn find_type_spans(code: &CodeText) -> Vec<TypeSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let (kw_len, is_trait) = if code.word_at(i, "impl") {
            (4, false)
        } else if code.word_at(i, "trait") {
            (5, true)
        } else {
            i += 1;
            continue;
        };
        let header_start = i + kw_len;
        // Find the opening `{` (or a terminating `;` for `trait A = B;`).
        let mut k = header_start;
        let mut open = None;
        while k < code.len() {
            match code.bytes[k] {
                b'<' if k > 0 && code.bytes[k - 1] != b'-' => {
                    k = code.skip_angles(k);
                    continue;
                }
                b'{' => {
                    open = Some(k);
                    break;
                }
                b';' => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            i = k + 1;
            continue;
        };
        let header = String::from_utf8_lossy(&code.bytes[header_start..open]).into_owned();
        let name = if is_trait {
            first_ident(&header)
        } else {
            impl_self_type(&header)
        };
        let close = code.match_brace(open);
        if let Some(name) = name {
            out.push(TypeSpan {
                name,
                start: open,
                end: close,
            });
        }
        i = open + 1;
    }
    out
}

/// First identifier in a string (the trait name in a `trait` header).
fn first_ident(s: &str) -> Option<String> {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() && !is_ident_byte(b[i]) {
        i += 1;
    }
    let start = i;
    while i < b.len() && is_ident_byte(b[i]) {
        i += 1;
    }
    (i > start).then(|| s[start..i].to_string())
}

/// The self-type name of an `impl` header: the last path segment of the
/// type after `for` (trait impls) or of the first type (inherent impls),
/// generics stripped.
fn impl_self_type(header: &str) -> Option<String> {
    // Strip leading generics `<...>`.
    let header = header.trim_start();
    let header = if let Some(rest) = header.strip_prefix('<') {
        let mut depth = 1usize;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &rest[cut..]
    } else {
        header
    };
    // The self type: after a top-level ` for `, else the whole header.
    let part = match split_top_level_for(header) {
        Some((_, rhs)) => rhs,
        None => header,
    };
    // Drop a trailing `where` clause, take the last ident before generics.
    let part = part.split(" where ").next().unwrap_or(part);
    let upto = part.find('<').unwrap_or(part.len());
    let mut last = None;
    let b = part.as_bytes();
    let mut i = 0;
    while i < upto {
        if is_ident_byte(b[i]) && (i == 0 || !is_ident_byte(b[i - 1])) {
            let start = i;
            while i < upto && is_ident_byte(b[i]) {
                i += 1;
            }
            let word = &part[start..i];
            if !KEYWORDS.contains(&word) && !word.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                last = Some(word.to_string());
            }
        } else {
            i += 1;
        }
    }
    last
}

/// Split an impl header on a ` for ` at angle-depth 0 (so `Box<dyn For>`
/// or generics containing `for` bounds don't split).
fn split_top_level_for(s: &str) -> Option<(&str, &str)> {
    let b = s.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i + 5 <= b.len() {
        match b[i] {
            b'<' => depth += 1,
            b'>' => depth -= 1,
            b'f' if depth == 0
                && s[i..].starts_with("for")
                && (i == 0 || !is_ident_byte(b[i - 1]))
                && (i + 3 == b.len() || !is_ident_byte(b[i + 3])) =>
            {
                return Some((&s[..i], s[i + 3..].trim_start()));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse one `use` declaration body (after the `use` keyword, before `;`)
/// into alias → path entries and glob prefixes.
fn parse_use(decl: &str, uses: &mut BTreeMap<String, String>, globs: &mut Vec<String>) {
    let decl = decl.trim_start_matches("pub").trim();
    parse_use_inner("", decl, uses, globs);
}

fn parse_use_inner(
    prefix: &str,
    part: &str,
    uses: &mut BTreeMap<String, String>,
    globs: &mut Vec<String>,
) {
    let part = part.trim();
    if part.is_empty() {
        return;
    }
    // Nested group: `head::{a, b::c}`.
    if let Some(brace) = part.find('{') {
        let head = part[..brace].trim().trim_end_matches("::");
        let inner = part[brace + 1..].trim_end().trim_end_matches('}');
        let joined = join_path(prefix, head);
        for elem in split_top_level_commas(inner) {
            parse_use_inner(&joined, elem, uses, globs);
        }
        return;
    }
    if let Some((path, alias)) = part.split_once(" as ") {
        let full = join_path(prefix, path.trim());
        uses.insert(alias.trim().to_string(), full);
        return;
    }
    if part == "*" {
        if !prefix.is_empty() {
            globs.push(prefix.to_string());
        }
        return;
    }
    if let Some(head) = part.strip_suffix("::*") {
        globs.push(join_path(prefix, head));
        return;
    }
    if part == "self" {
        if let Some(last) = prefix.rsplit("::").next() {
            uses.insert(last.to_string(), prefix.to_string());
        }
        return;
    }
    let full = join_path(prefix, part);
    if let Some(last) = full.rsplit("::").next() {
        uses.insert(last.to_string(), full.clone());
    }
}

fn join_path(prefix: &str, tail: &str) -> String {
    let tail = tail.trim().trim_start_matches("::");
    if prefix.is_empty() {
        tail.to_string()
    } else if tail.is_empty() {
        prefix.to_string()
    } else {
        format!("{prefix}::{tail}")
    }
}

/// Split on commas at brace-depth 0.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

/// Resolve one call site to candidate callee ids. See the module docs for
/// the over-approximation policy.
fn resolve(
    call: &CallSite,
    syms: &FileSyms,
    g: &CallGraph,
    by_name: &BTreeMap<&str, Vec<FnId>>,
) -> Vec<FnId> {
    let name = call.path.last().expect("call has a name");
    let Some(candidates) = by_name.get(name.as_str()) else {
        return Vec::new(); // no workspace function of this name: external
    };

    if call.is_method {
        // Method calls: receiver types are not inferred; link every
        // workspace method (or function) of this name.
        return candidates.clone();
    }

    if call.path.len() == 1 {
        // Bare call: same module first, then an explicit `use` import,
        // then glob imports, then every function of this name.
        let caller_module = call
            .caller
            .map(|c| g.fns[c].module.clone())
            .unwrap_or_else(|| syms.base.clone());
        let local: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|&id| g.fns[id].module == caller_module)
            .collect();
        if !local.is_empty() {
            return local;
        }
        if let Some(full) = syms.uses.get(name.as_str()) {
            let via_use = suffix_matches(candidates, g, &path_segments(full));
            if !via_use.is_empty() {
                return via_use;
            }
        }
        for prefix in &syms.glob_uses {
            let full = format!("{prefix}::{name}");
            let via_glob = suffix_matches(candidates, g, &path_segments(&full));
            if !via_glob.is_empty() {
                return via_glob;
            }
        }
        return candidates.clone();
    }

    // Qualified call: expand the first segment, then suffix-match against
    // qualified names; fall back to the last two segments (re-exports);
    // a miss is an external item, not an over-approximation.
    let mut segs: Vec<String> = call.path.clone();
    let first = segs[0].as_str();
    if first == "crate" {
        let krate = syms
            .base
            .split("::")
            .next()
            .unwrap_or(&syms.base)
            .to_string();
        segs.splice(0..1, [krate]);
    } else if first == "self" {
        let caller_module = call
            .caller
            .map(|c| g.fns[c].module.clone())
            .unwrap_or_else(|| syms.base.clone());
        segs.splice(0..1, path_segments(&caller_module));
    } else if first == "super" {
        let caller_module = call
            .caller
            .map(|c| g.fns[c].module.clone())
            .unwrap_or_else(|| syms.base.clone());
        let mut parent: Vec<String> = path_segments(&caller_module);
        parent.pop();
        segs.splice(0..1, parent);
    } else if let Some(full) = syms.uses.get(first) {
        segs.splice(0..1, path_segments(full));
    }
    if segs.first().map(String::as_str) == Some("") {
        segs.remove(0); // leading `::`
    }

    let full = suffix_matches(candidates, g, &segs);
    if !full.is_empty() {
        return full;
    }
    if call.path.len() >= 2 {
        let last_two = &call.path[call.path.len() - 2..];
        let two = suffix_matches(candidates, g, last_two);
        if !two.is_empty() {
            return two;
        }
    }
    Vec::new()
}

fn path_segments(p: &str) -> Vec<String> {
    p.split("::").map(str::to_string).collect()
}

/// Candidates whose qualified path ends with `suffix` (segment-aligned).
fn suffix_matches<S: AsRef<str>>(candidates: &[FnId], g: &CallGraph, suffix: &[S]) -> Vec<FnId> {
    candidates
        .iter()
        .copied()
        .filter(|&id| {
            let segs: Vec<&str> = g.fns[id].qualified.split("::").collect();
            segs.len() >= suffix.len()
                && segs[segs.len() - suffix.len()..]
                    .iter()
                    .zip(suffix)
                    .all(|(a, b)| *a == b.as_ref())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let files: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        CallGraph::build(&files)
    }

    fn id_of(g: &CallGraph, qualified: &str) -> FnId {
        g.fns
            .iter()
            .position(|f| f.qualified == qualified)
            .unwrap_or_else(|| {
                panic!(
                    "no fn {qualified}; have {:?}",
                    g.fns.iter().map(|f| &f.qualified).collect::<Vec<_>>()
                )
            })
    }

    fn has_edge(g: &CallGraph, from: &str, to: &str) -> bool {
        g.callees[id_of(g, from)].contains(&id_of(g, to))
    }

    #[test]
    fn module_base_paths() {
        assert_eq!(module_base("crates/pfs/src/lib.rs"), "pfs");
        assert_eq!(
            module_base("crates/pfs/src/model/cache.rs"),
            "pfs::model::cache"
        );
        assert_eq!(module_base("crates/pfs/src/model/mod.rs"), "pfs::model");
        assert_eq!(
            module_base("crates/stellar/src/bin/stellar-tune.rs"),
            "stellar::bin::stellar_tune"
        );
        assert_eq!(
            module_base("crates/detlint/src/main.rs"),
            "detlint::bin::main"
        );
        assert_eq!(
            module_base("crates/bench/benches/tuning.rs"),
            "bench::benches::tuning"
        );
        assert_eq!(module_base("src/lib.rs"), "stellar_repro");
        assert_eq!(
            module_base("tests/integration_obs.rs"),
            "tests::integration_obs"
        );
        assert_eq!(
            module_base("examples/quickstart.rs"),
            "examples::quickstart"
        );
    }

    #[test]
    fn inline_module_resolution() {
        let src = "mod outer { mod inner { fn f() { } } } fn g() { }";
        let tokens = lex(src);
        let mods = inline_modules(src, &tokens);
        assert_eq!(mods.len(), 2);
        let f_at = src.find("fn f").unwrap();
        let g_at = src.find("fn g").unwrap();
        assert_eq!(module_at("c", &mods, f_at), "c::outer::inner");
        assert_eq!(module_at("c", &mods, g_at), "c");
    }

    #[test]
    fn indexes_free_fns_methods_and_trait_defaults() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn free() {}\n\
             struct S;\n\
             impl S { fn method(&self) {} }\n\
             trait T { fn sig(&self); fn dflt(&self) { self.sig() } }\n\
             impl T for S { fn sig(&self) {} }\n",
        )]);
        let names: Vec<&str> = g.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert!(names.contains(&"a::free"));
        assert!(names.contains(&"a::S::method"));
        assert!(names.contains(&"a::T::dflt"));
        assert!(names.contains(&"a::S::sig"), "{names:?}");
        // The bodyless trait signature is not indexed; the default method
        // links to the impl's definition by name.
        assert!(has_edge(&g, "a::T::dflt", "a::S::sig"));
    }

    #[test]
    fn cross_crate_edge_via_use() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "use b::helpers::emit;\nfn run() { emit(1); }\n",
            ),
            ("crates/b/src/helpers.rs", "pub fn emit(_x: u32) {}\n"),
        ]);
        assert!(has_edge(&g, "a::run", "b::helpers::emit"));
    }

    #[test]
    fn qualified_call_resolves_without_use() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn run() { b::helpers::emit(1); }\n"),
            ("crates/b/src/helpers.rs", "pub fn emit(_x: u32) {}\n"),
        ]);
        assert!(has_edge(&g, "a::run", "b::helpers::emit"));
    }

    #[test]
    fn reexport_path_resolves_by_type_suffix() {
        // `b::Emitter::create` textually, definition at b::obs::Emitter::create.
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn run() { let _ = b::Emitter::create(); }\n",
            ),
            (
                "crates/b/src/obs.rs",
                "pub struct Emitter;\nimpl Emitter { pub fn create() -> Emitter { Emitter } }\n",
            ),
        ]);
        assert!(has_edge(&g, "a::run", "b::obs::Emitter::create"));
    }

    #[test]
    fn method_call_links_all_same_name_methods() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn go(x: X) { x.fire(); }\n"),
            (
                "crates/b/src/lib.rs",
                "pub struct P; impl P { pub fn fire(&self) {} }\n\
                 pub struct Q; impl Q { pub fn fire(&self) {} }\n",
            ),
        ]);
        // Receiver types are not inferred: both `fire`s are candidates.
        assert!(has_edge(&g, "a::go", "b::P::fire"));
        assert!(has_edge(&g, "a::go", "b::Q::fire"));
    }

    #[test]
    fn unresolved_bare_call_over_approximates() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn go() { mystery(); }\n"),
            ("crates/b/src/lib.rs", "pub fn mystery() {}\n"),
            ("crates/c/src/lib.rs", "pub fn mystery() {}\n"),
        ]);
        assert!(has_edge(&g, "a::go", "b::mystery"));
        assert!(has_edge(&g, "a::go", "c::mystery"));
    }

    #[test]
    fn bare_call_prefers_same_module() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn go() { helper(); }\n",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        assert!(has_edge(&g, "a::go", "a::helper"));
        assert!(!has_edge(&g, "a::go", "b::helper"));
    }

    #[test]
    fn external_qualified_call_adds_no_edges() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn new() {}\nfn go() { let _v: Vec<u8> = Vec::new(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct W; impl W { pub fn new() {} }\n",
            ),
        ]);
        // `Vec::new` matches no workspace item (`a::new` is not `*::Vec::new`,
        // nor is `b::W::new`): it is external, not everything named `new`.
        let go = id_of(&g, "a::go");
        assert!(g.callees[go].is_empty(), "{:?}", g.callees[go]);
    }

    #[test]
    fn turbofish_calls_are_seen() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "use b::pick;\nfn go() { let _ = pick::<u64>(); x.convert::<u8>(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn pick<T>() -> T { todo!() }\n\
                 pub struct C; impl C { pub fn convert<T>(&self) {} }\n",
            ),
        ]);
        assert!(has_edge(&g, "a::go", "b::pick"));
        assert!(has_edge(&g, "a::go", "b::C::convert"));
    }

    #[test]
    fn glob_import_resolves() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "use b::helpers::*;\nfn go() { emit(); }\n",
            ),
            ("crates/b/src/helpers.rs", "pub fn emit() {}\n"),
        ]);
        assert!(has_edge(&g, "a::go", "b::helpers::emit"));
    }

    #[test]
    fn use_groups_and_renames() {
        let mut uses = BTreeMap::new();
        let mut globs = Vec::new();
        parse_use("a::b::{c, d::e, f as g, self}", &mut uses, &mut globs);
        assert_eq!(uses.get("c").unwrap(), "a::b::c");
        assert_eq!(uses.get("e").unwrap(), "a::b::d::e");
        assert_eq!(uses.get("g").unwrap(), "a::b::f");
        assert_eq!(uses.get("b").unwrap(), "a::b");
        parse_use("x::y::*", &mut uses, &mut globs);
        assert_eq!(globs, ["x::y"]);
    }

    #[test]
    fn impl_headers() {
        assert_eq!(impl_self_type("Foo"), Some("Foo".into()));
        assert_eq!(impl_self_type("Foo<T>"), Some("Foo".into()));
        assert_eq!(
            impl_self_type("Display for CallError"),
            Some("CallError".into())
        );
        assert_eq!(
            impl_self_type("std::fmt::Display for obs::Line"),
            Some("Line".into())
        );
        assert_eq!(
            impl_self_type("Observer for &mut Emitter<W>"),
            Some("Emitter".into())
        );
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let src = "fn outer() {\n    fn inner() {\n        let x = 1;\n    }\n}\n";
        let g = graph(&[("crates/a/src/lib.rs", src)]);
        let at = src.find("let x").unwrap();
        let id = g.enclosing_fn("crates/a/src/lib.rs", at).unwrap();
        assert_eq!(g.fns[id].qualified, "a::inner");
    }

    #[test]
    fn calls_in_nested_mods_carry_the_inline_module_path() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "mod inner { pub fn f() { super::g(); } }\nfn g() {}\n",
        )]);
        assert_eq!(g.fns[id_of(&g, "a::inner::f")].module, "a::inner");
        assert!(has_edge(&g, "a::inner::f", "a::g"));
    }

    #[test]
    fn build_is_input_order_invariant() {
        let files = [
            ("crates/a/src/lib.rs", "use b::emit;\nfn go() { emit(); }\n"),
            (
                "crates/b/src/lib.rs",
                "pub fn emit() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/c/src/lib.rs", "fn lone() {}\n"),
        ];
        let g1 = graph(&files);
        let mut rev = files;
        rev.reverse();
        let g2 = graph(&rev);
        let summarize = |g: &CallGraph| -> Vec<(String, Vec<String>)> {
            g.fns
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    (
                        f.qualified.clone(),
                        g.callees[i]
                            .iter()
                            .map(|&j| g.fns[j].qualified.clone())
                            .collect(),
                    )
                })
                .collect()
        };
        assert_eq!(summarize(&g1), summarize(&g2));
    }
}
