//! A minimal but correct Rust lexer for lint purposes.
//!
//! The linter's rules are textual, so correctness hinges on one thing:
//! knowing exactly which byte ranges of a source file are *code* and which
//! are comments, string/char literals or lifetimes. This module produces a
//! complete, gap-free token partition of the input:
//!
//! - line comments (`//`), block comments (`/* ... */`) **including
//!   nesting** (`/* /* */ */`),
//! - string literals with escapes (`"a\"b"`), byte strings (`b"..."`),
//! - raw strings with arbitrary hash fences (`r"..."`, `r##"..."##`,
//!   `br#"..."#`) — and raw *identifiers* (`r#match`) correctly left as
//!   code,
//! - char literals vs lifetimes (`'a'` vs `'a`, `'\u{1F600}'`, `b'x'`,
//!   `'_`, `'static`),
//!
//! plus a [`LineIndex`] converting byte offsets to 1-based line:column
//! pairs (column counted in characters, as compilers render it).
//!
//! The lexer never fails: malformed or truncated input (unterminated
//! strings/comments) degrades to a token running to end-of-input, which is
//! the conservative choice for a linter (unterminated literals hide their
//! contents from rule matching rather than leaking them into code).

/// What a span of source text is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Plain code: everything rules are allowed to match against.
    Code,
    /// A `//` comment, up to (not including) the newline.
    LineComment,
    /// A `/* ... */` comment, nesting included.
    BlockComment,
    /// A `"..."` or `b"..."` string literal, escapes handled.
    Str,
    /// A raw string literal `r"..."` / `r#"..."#` / `br#"..."#`.
    RawStr,
    /// A character or byte literal (`'a'`, `'\n'`, `b'x'`).
    Char,
    /// A lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One token: a half-open byte range `start..end` of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Span classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the span.
    pub start: usize,
    /// Byte offset one past the last byte of the span.
    pub end: usize,
}

/// Tokenize `src` into a gap-free partition of `0..src.len()`.
///
/// Adjacent code bytes coalesce into single [`TokenKind::Code`] tokens, so
/// the output is the minimal alternating sequence of code and non-code
/// spans. Every boundary falls on a UTF-8 character boundary (delimiters
/// are all ASCII, and multi-byte characters are always consumed whole).
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Vec::new();
    let mut code_start = 0usize;
    let mut i = 0usize;

    // Close the pending code span (if non-empty) before a non-code token.
    macro_rules! flush_code {
        ($upto:expr) => {
            if code_start < $upto {
                out.push(Token {
                    kind: TokenKind::Code,
                    start: code_start,
                    end: $upto,
                });
            }
        };
    }

    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                flush_code!(i);
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::LineComment,
                    start,
                    end: i,
                });
                code_start = i;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                flush_code!(i);
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.push(Token {
                    kind: TokenKind::BlockComment,
                    start,
                    end: i,
                });
                code_start = i;
            }
            b'"' => {
                flush_code!(i);
                let start = i;
                i = scan_string(b, i + 1);
                out.push(Token {
                    kind: TokenKind::Str,
                    start,
                    end: i,
                });
                code_start = i;
            }
            b'r' if !ident_before(b, i) => {
                if let Some((end, _hashes)) = scan_raw_string(b, i + 1) {
                    flush_code!(i);
                    out.push(Token {
                        kind: TokenKind::RawStr,
                        start: i,
                        end,
                    });
                    i = end;
                    code_start = i;
                } else {
                    i += 1; // raw identifier (`r#match`) or plain ident: code
                }
            }
            b'b' if !ident_before(b, i) && i + 1 < n => match b[i + 1] {
                b'"' => {
                    flush_code!(i);
                    let start = i;
                    i = scan_string(b, i + 2);
                    out.push(Token {
                        kind: TokenKind::Str,
                        start,
                        end: i,
                    });
                    code_start = i;
                }
                b'r' => {
                    if let Some((end, _)) = scan_raw_string(b, i + 2) {
                        flush_code!(i);
                        out.push(Token {
                            kind: TokenKind::RawStr,
                            start: i,
                            end,
                        });
                        i = end;
                        code_start = i;
                    } else {
                        i += 1;
                    }
                }
                b'\'' => {
                    flush_code!(i);
                    let start = i;
                    i = scan_char_body(b, i + 2);
                    out.push(Token {
                        kind: TokenKind::Char,
                        start,
                        end: i,
                    });
                    code_start = i;
                }
                _ => i += 1,
            },
            b'\'' => {
                flush_code!(i);
                let start = i;
                let (end, kind) = scan_quote(src, b, i);
                out.push(Token { kind, start, end });
                i = end;
                code_start = i;
            }
            _ => i += 1,
        }
    }
    flush_code!(n);
    out
}

/// Concatenated text of all [`TokenKind::Code`] spans.
///
/// Rule patterns must only ever match inside this text. Spans are joined
/// with a newline so tokens from different lines can never join into a
/// false pattern match across a comment or literal boundary.
pub fn code_text(src: &str, tokens: &[Token]) -> String {
    let mut out = String::with_capacity(src.len());
    for t in tokens {
        if t.kind == TokenKind::Code {
            out.push_str(&src[t.start..t.end]);
            out.push('\n');
        }
    }
    out
}

/// True if the byte before `i` can end an identifier (so `r`/`b` at `i` is
/// the tail of a longer name like `ptr` or `rgb`, not a literal prefix).
fn ident_before(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_' || b[i - 1] >= 0x80)
}

/// Scan a (byte) string body starting just after the opening quote.
/// Returns the offset one past the closing quote (or EOF if unterminated).
fn scan_string(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' if i + 1 < n => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Try to scan a raw string whose hash fence starts at `i` (just after the
/// `r` / `br` prefix). Returns `(end_offset, hash_count)` on success; `None`
/// if this is not a raw string (e.g. a raw identifier `r#match`).
fn scan_raw_string(b: &[u8], mut i: usize) -> Option<(usize, usize)> {
    let n = b.len();
    let mut hashes = 0usize;
    while i < n && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || b[i] != b'"' {
        return None;
    }
    i += 1;
    while i < n {
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < n && seen < hashes && b[j] == b'#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return Some((j, hashes));
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    Some((n, hashes)) // unterminated: conservative, consume to EOF
}

/// Scan a char-literal body starting just after the opening quote (and any
/// `b` prefix). Returns the offset one past the closing quote.
fn scan_char_body(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' if i + 1 < n => i += 2,
            b'\'' => return i + 1,
            b'\n' => return i, // malformed: never swallow past the line
            _ => i += 1,
        }
    }
    n
}

/// Disambiguate `'` at offset `i`: char literal or lifetime/label?
///
/// - `'\...` is always a char literal (lifetimes cannot start with `\`).
/// - `'c'` (one character, possibly multi-byte, then `'`) is a char.
/// - anything else (`'a`, `'static`, `'_`) is a lifetime: consume the
///   identifier.
fn scan_quote(src: &str, b: &[u8], i: usize) -> (usize, TokenKind) {
    let n = b.len();
    if i + 1 >= n {
        return (n, TokenKind::Lifetime);
    }
    if b[i + 1] == b'\\' {
        return (scan_char_body(b, i + 1), TokenKind::Char);
    }
    // Decode the single character following the quote.
    let next = src[i + 1..].chars().next();
    if let Some(c) = next {
        let after = i + 1 + c.len_utf8();
        if c != '\'' && after < n && b[after] == b'\'' {
            return (after + 1, TokenKind::Char);
        }
    }
    // Lifetime or label: consume identifier characters.
    let mut j = i + 1;
    while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    (j.max(i + 1), TokenKind::Lifetime)
}

/// Byte-offset → 1-based `(line, column)` conversion for one source file.
///
/// Columns are counted in *characters* from the start of the line, matching
/// how rustc renders diagnostics closely enough for editors to jump to.
#[derive(Debug)]
pub struct LineIndex {
    /// Byte offset at which each line starts (line 1 at offset 0).
    line_starts: Vec<usize>,
}

impl LineIndex {
    /// Build the index for `src`.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0usize];
        for (i, byte) in src.bytes().enumerate() {
            if byte == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineIndex { line_starts }
    }

    /// Convert a byte offset into 1-based `(line, column)`.
    ///
    /// Offsets past the end of `src` clamp to the final position. Offsets
    /// inside a multi-byte character round down to that character's column.
    pub fn line_col(&self, src: &str, offset: usize) -> (usize, usize) {
        let offset = offset.min(src.len());
        let line = match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx,
            Err(idx) => idx - 1,
        };
        let start = self.line_starts[line];
        let col = src[start..]
            .char_indices()
            .take_while(|(i, _)| start + i < offset)
            .count();
        (line + 1, col + 1)
    }

    /// Byte offset at which 1-based `line` starts, if it exists.
    pub fn line_start(&self, line: usize) -> Option<usize> {
        self.line_starts.get(line.checked_sub(1)?).copied()
    }

    /// Number of lines (at least 1, even for empty input).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    #[test]
    fn partitions_exactly() {
        let src = "let x = 1; // c\nlet y = \"s\";";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before token {t:?}");
            assert!(t.end >= t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* x /* y */ z */ b";
        let v = kinds(src);
        assert_eq!(v[1], (TokenKind::BlockComment, "/* x /* y */ z */"));
        assert_eq!(v[2], (TokenKind::Code, " b"));
    }

    #[test]
    fn strings_hide_comment_markers() {
        let src = "let s = \"// not a comment /*\"; x()";
        let v = kinds(src);
        assert_eq!(v.len(), 3);
        assert_eq!(v[1].0, TokenKind::Str);
        assert!(v[2].1.contains("x()"));
    }

    #[test]
    fn escaped_quote_in_string() {
        let src = r#"let s = "a\"b"; y"#;
        let v = kinds(src);
        assert_eq!(v[1], (TokenKind::Str, r#""a\"b""#));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"let s = r##"has "# inside"##; tail"###;
        let v = kinds(src);
        assert_eq!(v[1].0, TokenKind::RawStr);
        assert!(v[2].1.contains("tail"));
    }

    #[test]
    fn raw_identifier_is_code() {
        let src = "let r#match = 1;";
        let v = kinds(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, TokenKind::Code);
    }

    #[test]
    fn byte_literals() {
        let src = "let a = b\"bytes\"; let c = b'x'; let r = br#\"raw\"#;";
        let v = kinds(src);
        let lits: Vec<TokenKind> = v
            .iter()
            .map(|(k, _)| *k)
            .filter(|k| *k != TokenKind::Code)
            .collect();
        assert_eq!(
            lits,
            vec![TokenKind::Str, TokenKind::Char, TokenKind::RawStr]
        );
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c = 'a'; fn f<'a>(x: &'a str) -> &'static str { loop { break 'static2; } }";
        let v = kinds(src);
        let non_code: Vec<(TokenKind, &str)> = v
            .into_iter()
            .filter(|(k, _)| *k != TokenKind::Code)
            .collect();
        assert_eq!(non_code[0], (TokenKind::Char, "'a'"));
        assert_eq!(non_code[1], (TokenKind::Lifetime, "'a"));
        assert_eq!(non_code[2], (TokenKind::Lifetime, "'a"));
        assert_eq!(non_code[3], (TokenKind::Lifetime, "'static"));
        assert_eq!(non_code[4], (TokenKind::Lifetime, "'static2"));
    }

    #[test]
    fn escaped_and_unicode_chars() {
        let src = "let a = '\\n'; let b = '\\''; let c = '\\u{1F600}'; let d = 'é';";
        let v = kinds(src);
        let chars: Vec<&str> = v
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(chars, vec!["'\\n'", "'\\''", "'\\u{1F600}'", "'é'"]);
    }

    #[test]
    fn line_comment_stops_at_newline() {
        let src = "x // hidden Instant::now\ny";
        let code = code_text(src, &lex(src));
        assert!(!code.contains("Instant::now"));
        assert!(code.contains('y'));
    }

    #[test]
    fn unterminated_inputs_consume_to_eof() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'\\", "b\"x"] {
            let toks = lex(src);
            assert_eq!(toks.last().unwrap().end, src.len(), "input {src:?}");
        }
    }

    #[test]
    fn line_col_basics() {
        let src = "ab\ncde\nf";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_col(src, 0), (1, 1));
        assert_eq!(idx.line_col(src, 1), (1, 2));
        assert_eq!(idx.line_col(src, 3), (2, 1));
        assert_eq!(idx.line_col(src, 5), (2, 3));
        assert_eq!(idx.line_col(src, 7), (3, 1));
        assert_eq!(idx.line_count(), 3);
    }

    #[test]
    fn line_col_counts_chars_not_bytes() {
        let src = "éé x";
        let idx = LineIndex::new(src);
        // 'x' is at byte 5 but character column 4.
        assert_eq!(idx.line_col(src, 5), (1, 4));
    }
}
