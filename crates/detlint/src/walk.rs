//! Workspace file discovery.
//!
//! Collects every `.rs` file under the workspace root, skipping `vendor/`
//! (API-compatible third-party stand-ins — not ours to lint), `target/`,
//! and VCS/CI metadata directories. Paths are returned workspace-relative
//! with `/` separators in sorted order, so the linter's output is
//! deterministic regardless of filesystem enumeration order.

use std::fs;
use std::io;
use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".github", "node_modules"];

/// Collect `(relative_path, contents)` for every workspace `.rs` file.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let contents = fs::read_to_string(&path)?;
            out.push((rel, contents));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_this_workspace_sorted_and_skips_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_workspace(&root).unwrap();
        assert!(files.iter().any(|(p, _)| p == "crates/detlint/src/walk.rs"));
        assert!(files
            .iter()
            .any(|(p, _)| p == "crates/simcore/src/chacha.rs"));
        assert!(!files.iter().any(|(p, _)| p.starts_with("vendor/")));
        assert!(!files.iter().any(|(p, _)| p.starts_with("target/")));
        let mut sorted = files.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            files.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            sorted.iter().map(|(p, _)| p).collect::<Vec<_>>()
        );
    }
}
