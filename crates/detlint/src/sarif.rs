//! SARIF 2.1.0 emission for CI annotation.
//!
//! GitHub's code-scanning upload turns a SARIF report into inline PR
//! annotations, so `detlint --format sarif` emits the subset of SARIF
//! 2.1.0 that upload consumes: one run, the tool driver with the full
//! rule catalogue ([`crate::rules::RULES`] plus the `DLINT` meta rule),
//! and one `result` per diagnostic with a physical location
//! (workspace-relative URI + 1-based line/column region).
//!
//! The same structs derive `Deserialize`, which is how [`validate`]
//! checks conformance offline: the emitted JSON must round-trip through
//! the typed model (every required SARIF property present with the right
//! JSON type — the vendored derive rejects missing or mistyped fields)
//! and then pass the semantic constraints the schema imposes (version
//! literal, level enum, in-bounds rule indices, 1-based regions).

use crate::rules::{Diagnostic, META_RULE, RULES};
use serde::{Deserialize, Serialize};

/// The published SARIF 2.1.0 schema URI.
pub const SCHEMA_URI: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Top-level SARIF log.
#[derive(Debug, Serialize, Deserialize)]
pub struct SarifLog {
    /// Schema URI (`$schema`).
    #[serde(rename = "$schema")]
    pub schema: String,
    /// SARIF version — always `"2.1.0"`.
    pub version: String,
    /// Analysis runs; detlint emits exactly one.
    pub runs: Vec<Run>,
}

/// One analysis run.
#[derive(Debug, Serialize, Deserialize)]
pub struct Run {
    /// The tool that produced this run.
    pub tool: Tool,
    /// One entry per diagnostic.
    pub results: Vec<ResultEntry>,
}

/// The analysis tool.
#[derive(Debug, Serialize, Deserialize)]
pub struct Tool {
    /// The driver component.
    pub driver: Driver,
}

/// Tool driver metadata plus the rule catalogue.
#[derive(Debug, Serialize, Deserialize)]
pub struct Driver {
    /// Tool name.
    pub name: String,
    /// Link shown next to findings.
    #[serde(rename = "informationUri")]
    pub information_uri: String,
    /// The rule catalogue; `ruleIndex` in results points into this.
    pub rules: Vec<ReportingDescriptor>,
}

/// One rule description.
#[derive(Debug, Serialize, Deserialize)]
pub struct ReportingDescriptor {
    /// Stable rule id (`D001`... / `DLINT`).
    pub id: String,
    /// One-line rule summary.
    #[serde(rename = "shortDescription")]
    pub short_description: Message,
}

/// A SARIF message object.
#[derive(Debug, Serialize, Deserialize)]
pub struct Message {
    /// Plain-text message.
    pub text: String,
}

/// One reported finding.
#[derive(Debug, Serialize, Deserialize)]
pub struct ResultEntry {
    /// Rule id of the finding.
    #[serde(rename = "ruleId")]
    pub rule_id: String,
    /// Index of the rule in the driver's `rules` array.
    #[serde(rename = "ruleIndex")]
    pub rule_index: usize,
    /// Severity — detlint violations are always `"error"`.
    pub level: String,
    /// The diagnostic message.
    pub message: Message,
    /// Where the finding is.
    pub locations: Vec<Location>,
}

/// A result location.
#[derive(Debug, Serialize, Deserialize)]
pub struct Location {
    /// The physical (file/region) location.
    #[serde(rename = "physicalLocation")]
    pub physical_location: PhysicalLocation,
}

/// File + region of a finding.
#[derive(Debug, Serialize, Deserialize)]
pub struct PhysicalLocation {
    /// The file the finding is in.
    #[serde(rename = "artifactLocation")]
    pub artifact_location: ArtifactLocation,
    /// The position inside that file.
    pub region: Region,
}

/// A workspace-relative file reference.
#[derive(Debug, Serialize, Deserialize)]
pub struct ArtifactLocation {
    /// Relative path with `/` separators.
    pub uri: String,
    /// Base the URI is relative to (the checkout root).
    #[serde(rename = "uriBaseId")]
    pub uri_base_id: String,
}

/// A 1-based source region.
#[derive(Debug, Serialize, Deserialize)]
pub struct Region {
    /// 1-based start line.
    #[serde(rename = "startLine")]
    pub start_line: usize,
    /// 1-based start column.
    #[serde(rename = "startColumn")]
    pub start_column: usize,
}

/// The full rule catalogue as SARIF reporting descriptors: the shipped
/// rules in order, then the `DLINT` meta rule last.
fn catalogue() -> Vec<ReportingDescriptor> {
    let mut rules: Vec<ReportingDescriptor> = RULES
        .iter()
        .map(|r| ReportingDescriptor {
            id: r.id.to_string(),
            short_description: Message {
                text: r.title.to_string(),
            },
        })
        .collect();
    rules.push(ReportingDescriptor {
        id: META_RULE.to_string(),
        short_description: Message {
            text:
                "annotation hygiene (malformed/unused detlint::allow, stale detlint.toml entries)"
                    .to_string(),
        },
    });
    rules
}

/// Build the SARIF log for a set of diagnostics.
pub fn report(diagnostics: &[Diagnostic]) -> SarifLog {
    let rules = catalogue();
    let index_of = |id: &str| -> usize {
        rules
            .iter()
            .position(|r| r.id == id)
            .unwrap_or(rules.len() - 1) // unknown ids fold into the meta rule
    };
    let results = diagnostics
        .iter()
        .map(|d| ResultEntry {
            rule_id: d.rule.clone(),
            rule_index: index_of(&d.rule),
            level: "error".to_string(),
            message: Message {
                text: d.message.clone(),
            },
            locations: vec![Location {
                physical_location: PhysicalLocation {
                    artifact_location: ArtifactLocation {
                        uri: d.path.clone(),
                        uri_base_id: "SRCROOT".to_string(),
                    },
                    region: Region {
                        start_line: d.line.max(1),
                        start_column: d.col.max(1),
                    },
                },
            }],
        })
        .collect();
    SarifLog {
        schema: SCHEMA_URI.to_string(),
        version: "2.1.0".to_string(),
        runs: vec![Run {
            tool: Tool {
                driver: Driver {
                    name: "detlint".to_string(),
                    information_uri: "https://github.com/oasis-tcs/sarif-spec".to_string(),
                    rules,
                },
            },
            results,
        }],
    }
}

/// Render diagnostics as a pretty-printed SARIF 2.1.0 document.
pub fn to_json(diagnostics: &[Diagnostic]) -> String {
    serde_json::to_string_pretty(&report(diagnostics)).expect("SARIF log serializes")
}

/// Validate a SARIF document against the 2.1.0 schema subset detlint
/// emits: the JSON must parse into the typed model (all required
/// properties present with the correct JSON types) and satisfy the
/// schema's semantic constraints. Returns a description of the first
/// violation found.
pub fn validate(json: &str) -> Result<(), String> {
    let log: SarifLog = serde_json::from_str(json).map_err(|e| format!("not valid SARIF: {e}"))?;
    if log.version != "2.1.0" {
        return Err(format!("version must be \"2.1.0\", got {:?}", log.version));
    }
    if !log.schema.contains("sarif") {
        return Err(format!(
            "$schema does not reference SARIF: {:?}",
            log.schema
        ));
    }
    if log.runs.is_empty() {
        return Err("runs must contain at least one run".to_string());
    }
    for run in &log.runs {
        let driver = &run.tool.driver;
        if driver.name.is_empty() {
            return Err("tool.driver.name must be non-empty".to_string());
        }
        for (i, r) in run.results.iter().enumerate() {
            if r.rule_index >= driver.rules.len() {
                return Err(format!(
                    "results[{i}].ruleIndex {} out of bounds ({} rules)",
                    r.rule_index,
                    driver.rules.len()
                ));
            }
            if driver.rules[r.rule_index].id != r.rule_id {
                return Err(format!(
                    "results[{i}].ruleId {:?} does not match rules[{}].id {:?}",
                    r.rule_id, r.rule_index, driver.rules[r.rule_index].id
                ));
            }
            if !matches!(r.level.as_str(), "none" | "note" | "warning" | "error") {
                return Err(format!(
                    "results[{i}].level {:?} not a SARIF level",
                    r.level
                ));
            }
            if r.locations.is_empty() {
                return Err(format!("results[{i}] has no locations"));
            }
            for loc in &r.locations {
                let phys = &loc.physical_location;
                if phys.artifact_location.uri.is_empty() {
                    return Err(format!("results[{i}] artifactLocation.uri is empty"));
                }
                if phys.artifact_location.uri.starts_with('/') {
                    return Err(format!(
                        "results[{i}] artifactLocation.uri must be relative: {:?}",
                        phys.artifact_location.uri
                    ));
                }
                if phys.region.start_line == 0 || phys.region.start_column == 0 {
                    return Err(format!("results[{i}] region is 0-based; SARIF is 1-based"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &str, line: usize) -> Diagnostic {
        Diagnostic {
            path: "crates/pfs/src/lib.rs".to_string(),
            line,
            col: 5,
            rule: rule.to_string(),
            message: format!("{rule} fired"),
        }
    }

    #[test]
    fn emitted_sarif_validates() {
        let diags = [diag("D001", 3), diag("D006", 7), diag(META_RULE, 1)];
        let json = to_json(&diags);
        validate(&json).unwrap();
    }

    #[test]
    fn empty_report_validates() {
        validate(&to_json(&[])).unwrap();
    }

    #[test]
    fn rule_indices_point_at_the_catalogue() {
        let log = report(&[diag("D006", 1)]);
        let run = &log.runs[0];
        let r = &run.results[0];
        assert_eq!(run.tool.driver.rules[r.rule_index].id, "D006");
        // Catalogue = shipped rules + meta rule, in order.
        assert_eq!(run.tool.driver.rules.len(), RULES.len() + 1);
        assert_eq!(run.tool.driver.rules.last().unwrap().id, META_RULE);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
        let mut log = report(&[diag("D001", 1)]);
        log.version = "2.0.0".to_string();
        let json = serde_json::to_string_pretty(&log).unwrap();
        assert!(validate(&json).unwrap_err().contains("version"));
        let mut log = report(&[diag("D001", 1)]);
        log.runs[0].results[0].rule_index = 99;
        let json = serde_json::to_string_pretty(&log).unwrap();
        assert!(validate(&json).unwrap_err().contains("out of bounds"));
        let mut log = report(&[diag("D001", 1)]);
        log.runs[0].results[0].locations[0]
            .physical_location
            .region
            .start_line = 0;
        let json = serde_json::to_string_pretty(&log).unwrap();
        assert!(validate(&json).unwrap_err().contains("1-based"));
    }
}
