//! `detlint.toml`: committed per-rule allowlists.
//!
//! The build environment is offline and the workspace vendors no TOML
//! crate, so this module parses exactly the subset the linter needs:
//!
//! ```toml
//! # comment
//! [rules.D001]
//! allow = [
//!     "bench::bin::perfsuite",  # module-path glob, `*` matches anything
//! ]
//! ```
//!
//! Sections are `[rules.<RULE-ID>]`; the only recognised key is `allow`,
//! a (possibly multi-line) array of module-path globs. Unknown sections,
//! keys, or malformed lines are hard errors — a lint config that is
//! silently ignored is worse than none.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed allowlist configuration.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Rule id → module-path globs exempt from that rule.
    pub allow: BTreeMap<String, Vec<String>>,
}

/// A configuration parse error with its 1-based line number.
#[derive(Debug)]
pub struct ConfigError {
    /// Line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "detlint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parse the `detlint.toml` subset described in the module docs.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut current: Option<String> = None;
        let mut lines = src.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let rule = section.strip_prefix("rules.").ok_or_else(|| ConfigError {
                    line: i + 1,
                    message: format!("unknown section `[{section}]` (expected `[rules.<ID>]`)"),
                })?;
                if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
                    return Err(ConfigError {
                        line: i + 1,
                        message: format!("bad rule id `{rule}`"),
                    });
                }
                cfg.allow.entry(rule.to_string()).or_default();
                current = Some(rule.to_string());
                continue;
            }
            let Some(rest) = line.strip_prefix("allow").map(str::trim_start) else {
                return Err(ConfigError {
                    line: i + 1,
                    message: format!("unrecognised line `{line}`"),
                });
            };
            let Some(rest) = rest.strip_prefix('=') else {
                return Err(ConfigError {
                    line: i + 1,
                    message: "expected `allow = [...]`".into(),
                });
            };
            let Some(rule) = current.clone() else {
                return Err(ConfigError {
                    line: i + 1,
                    message: "`allow` outside a `[rules.<ID>]` section".into(),
                });
            };
            // Gather the array source, consuming continuation lines until
            // the closing bracket.
            let mut array_src = rest.trim().to_string();
            let mut last_line = i + 1;
            while !array_src.contains(']') {
                match lines.next() {
                    Some((j, cont)) => {
                        array_src.push(' ');
                        array_src.push_str(strip_comment(cont).trim());
                        last_line = j + 1;
                    }
                    None => {
                        return Err(ConfigError {
                            line: last_line,
                            message: "unterminated `allow` array".into(),
                        });
                    }
                }
            }
            let entries = parse_string_array(&array_src).map_err(|message| ConfigError {
                line: last_line,
                message,
            })?;
            cfg.allow.entry(rule).or_default().extend(entries);
        }
        Ok(cfg)
    }

    /// Globs configured for `rule` (empty slice when none).
    pub fn allows_for(&self, rule: &str) -> &[String] {
        self.allow.get(rule).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `[ "a", "b", ]` into its string elements.
fn parse_string_array(src: &str) -> Result<Vec<String>, String> {
    let src = src.trim();
    let inner = src
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected `[ ... ]`, got `{src}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let value = part
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{part}`"))?;
        if value.is_empty() {
            return Err("empty allowlist entry".into());
        }
        out.push(value.to_string());
    }
    Ok(out)
}

/// Match a module path against a glob where `*` matches any substring
/// (including `::`). `stellar::bin::*` matches every stellar binary;
/// `*::bin::*` matches binaries of every crate.
pub fn glob_match(glob: &str, path: &str) -> bool {
    fn rec(g: &[u8], p: &[u8]) -> bool {
        match g.first() {
            None => p.is_empty(),
            Some(b'*') => {
                let g = &g[1..];
                (0..=p.len()).any(|k| rec(g, &p[k..]))
            }
            Some(&c) => p.first() == Some(&c) && rec(&g[1..], &p[1..]),
        }
    }
    rec(glob.as_bytes(), path.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            r#"
# top comment
[rules.D001]
allow = ["bench::bin::perfsuite"]

[rules.D005]
allow = [
    "*::bin::*",   # all CLI binaries
    "examples::*",
]
"#,
        )
        .unwrap();
        assert_eq!(cfg.allows_for("D001"), ["bench::bin::perfsuite"]);
        assert_eq!(cfg.allows_for("D005"), ["*::bin::*", "examples::*"]);
        assert!(cfg.allows_for("D002").is_empty());
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(Config::parse("[other]").is_err());
        assert!(Config::parse("[rules.D001]\ndeny = []").is_err());
        assert!(Config::parse("allow = [\"x\"]").is_err());
        assert!(Config::parse("[rules.D001]\nallow = [\"x\"").is_err());
        assert!(Config::parse("[rules.D001]\nallow = [x]").is_err());
    }

    #[test]
    fn empty_section_is_fine() {
        let cfg = Config::parse("[rules.D003]\n").unwrap();
        assert!(cfg.allows_for("D003").is_empty());
    }

    #[test]
    fn globs() {
        assert!(glob_match("*::bin::*", "stellar::bin::stellar_tune"));
        assert!(glob_match("examples::*", "examples::quickstart"));
        assert!(glob_match(
            "stellar::campaign::table",
            "stellar::campaign::table"
        ));
        assert!(!glob_match("stellar::campaign::table", "stellar::campaign"));
        assert!(!glob_match("*::bin::*", "stellar::campaign"));
        assert!(glob_match("*", "anything::at::all"));
    }
}
