//! `detlint.toml`: committed per-rule allowlists.
//!
//! The build environment is offline and the workspace vendors no TOML
//! crate, so this module parses exactly the subset the linter needs:
//!
//! ```toml
//! # comment
//! [rules.D001]
//! allow = [
//!     "bench::bin::perfsuite",  # module-path glob, `*` matches anything
//! ]
//! ```
//!
//! Sections are `[rules.<RULE-ID>]`; the only recognised key is `allow`,
//! a (possibly multi-line) array of module-path globs. Unknown sections,
//! keys, or malformed lines are hard errors — a lint config that is
//! silently ignored is worse than none.
//!
//! Every entry records the `detlint.toml` line it came from: since the
//! cone analysis (PR 9), entries are *cone-entry exclusions*, and an
//! entry whose glob no longer matches any canonical-cone module is
//! reported as a stale waiver at that line.

use std::collections::BTreeMap;
use std::fmt;

/// One allowlist entry: a module-path glob plus its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Module-path glob (`*` matches any substring, `::` included).
    pub glob: String,
    /// 1-based `detlint.toml` line the entry appears on.
    pub line: usize,
}

/// Parsed allowlist configuration.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Rule id → module-path globs exempt from that rule.
    pub allow: BTreeMap<String, Vec<AllowEntry>>,
}

/// A configuration parse error with its 1-based line number.
#[derive(Debug)]
pub struct ConfigError {
    /// Line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "detlint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parse the `detlint.toml` subset described in the module docs.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut current: Option<String> = None;
        let mut lines = src.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let rule = section.strip_prefix("rules.").ok_or_else(|| ConfigError {
                    line: i + 1,
                    message: format!("unknown section `[{section}]` (expected `[rules.<ID>]`)"),
                })?;
                if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
                    return Err(ConfigError {
                        line: i + 1,
                        message: format!("bad rule id `{rule}`"),
                    });
                }
                cfg.allow.entry(rule.to_string()).or_default();
                current = Some(rule.to_string());
                continue;
            }
            let Some(rest) = line.strip_prefix("allow").map(str::trim_start) else {
                return Err(ConfigError {
                    line: i + 1,
                    message: format!("unrecognised line `{line}`"),
                });
            };
            let Some(rest) = rest.strip_prefix('=') else {
                return Err(ConfigError {
                    line: i + 1,
                    message: "expected `allow = [...]`".into(),
                });
            };
            let Some(rule) = current.clone() else {
                return Err(ConfigError {
                    line: i + 1,
                    message: "`allow` outside a `[rules.<ID>]` section".into(),
                });
            };
            // Parse the array fragment-by-fragment so each element keeps
            // the physical line it appears on.
            let entries = cfg.allow.entry(rule).or_default();
            let first = rest.trim();
            let Some(mut fragment) = first.strip_prefix('[').map(str::to_string) else {
                return Err(ConfigError {
                    line: i + 1,
                    message: format!("expected `[ ... ]`, got `{first}`"),
                });
            };
            let mut at = i + 1;
            loop {
                let (body, done) = match fragment.find(']') {
                    Some(k) => {
                        if !fragment[k + 1..].trim().is_empty() {
                            return Err(ConfigError {
                                line: at,
                                message: format!(
                                    "unexpected trailing `{}` after `]`",
                                    fragment[k + 1..].trim()
                                ),
                            });
                        }
                        (&fragment[..k], true)
                    }
                    None => (fragment.as_str(), false),
                };
                for part in body.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue; // trailing comma / blank continuation
                    }
                    let glob = part
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| ConfigError {
                            line: at,
                            message: format!("expected a quoted string, got `{part}`"),
                        })?;
                    if glob.is_empty() {
                        return Err(ConfigError {
                            line: at,
                            message: "empty allowlist entry".into(),
                        });
                    }
                    entries.push(AllowEntry {
                        glob: glob.to_string(),
                        line: at,
                    });
                }
                if done {
                    break;
                }
                match lines.next() {
                    Some((j, cont)) => {
                        fragment = strip_comment(cont).trim().to_string();
                        at = j + 1;
                    }
                    None => {
                        return Err(ConfigError {
                            line: at,
                            message: "unterminated `allow` array".into(),
                        });
                    }
                }
            }
        }
        Ok(cfg)
    }

    /// Entries configured for `rule` (empty slice when none).
    pub fn allows_for(&self, rule: &str) -> &[AllowEntry] {
        self.allow.get(rule).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Match a module path against a glob where `*` matches any substring
/// (including `::`). `stellar::bin::*` matches every stellar binary;
/// `*::bin::*` matches binaries of every crate.
pub fn glob_match(glob: &str, path: &str) -> bool {
    fn rec(g: &[u8], p: &[u8]) -> bool {
        match g.first() {
            None => p.is_empty(),
            Some(b'*') => {
                let g = &g[1..];
                (0..=p.len()).any(|k| rec(g, &p[k..]))
            }
            Some(&c) => p.first() == Some(&c) && rec(&g[1..], &p[1..]),
        }
    }
    rec(glob.as_bytes(), path.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn globs<'c>(cfg: &'c Config, rule: &str) -> Vec<&'c str> {
        cfg.allows_for(rule)
            .iter()
            .map(|e| e.glob.as_str())
            .collect()
    }

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            r#"
# top comment
[rules.D001]
allow = ["bench::bin::perfsuite"]

[rules.D005]
allow = [
    "*::bin::*",   # all CLI binaries
    "examples::*",
]
"#,
        )
        .unwrap();
        assert_eq!(globs(&cfg, "D001"), ["bench::bin::perfsuite"]);
        assert_eq!(globs(&cfg, "D005"), ["*::bin::*", "examples::*"]);
        assert!(cfg.allows_for("D002").is_empty());
    }

    #[test]
    fn entries_carry_their_source_lines() {
        let cfg = Config::parse(
            "[rules.D001]\nallow = [\"a::b\"]\n[rules.D005]\nallow = [\n    \"c::*\",\n    \"d::*\", \"e::*\",\n]\n",
        )
        .unwrap();
        assert_eq!(
            cfg.allows_for("D001"),
            [AllowEntry {
                glob: "a::b".into(),
                line: 2
            }]
        );
        let lines: Vec<usize> = cfg.allows_for("D005").iter().map(|e| e.line).collect();
        assert_eq!(lines, [5, 6, 6]);
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(Config::parse("[other]").is_err());
        assert!(Config::parse("[rules.D001]\ndeny = []").is_err());
        assert!(Config::parse("allow = [\"x\"]").is_err());
        assert!(Config::parse("[rules.D001]\nallow = [\"x\"").is_err());
        assert!(Config::parse("[rules.D001]\nallow = [x]").is_err());
        assert!(Config::parse("[rules.D001]\nallow = [\"x\"] junk").is_err());
    }

    #[test]
    fn empty_section_is_fine() {
        let cfg = Config::parse("[rules.D003]\n").unwrap();
        assert!(cfg.allows_for("D003").is_empty());
    }

    #[test]
    fn globs_match() {
        assert!(glob_match("*::bin::*", "stellar::bin::stellar_tune"));
        assert!(glob_match("examples::*", "examples::quickstart"));
        assert!(glob_match(
            "stellar::campaign::table",
            "stellar::campaign::table"
        ));
        assert!(!glob_match("stellar::campaign::table", "stellar::campaign"));
        assert!(!glob_match("*::bin::*", "stellar::campaign"));
        assert!(glob_match("*", "anything::at::all"));
    }
}
