//! The determinism rule catalogue and the cone-aware engine.
//!
//! Rules are textual: they match patterns inside the *code* spans produced
//! by [`crate::lexer`] (comments and string/char literals can never match),
//! resolve each match to a module path (crate path from the file location
//! plus any inline `mod name { ... }` blocks containing the match), and
//! then apply four waiver layers in order:
//!
//! 1. **Config allowlists** — module-path globs from `detlint.toml`
//!    ([`crate::config::Config`]), for whole tools whose job is the thing
//!    the rule forbids (e.g. the perf harness reads wall clocks). Since
//!    the cone analysis these are *cone-entry exclusions*: an entry whose
//!    glob matches no canonical-cone module is a stale waiver and is
//!    itself reported ([`META_RULE`]).
//! 2. **Inline annotations** — `// detlint::allow(D00x): <reason>` on the
//!    match line or the line directly above. The reason is mandatory;
//!    malformed or *unused* annotations are themselves violations
//!    ([`META_RULE`]), so waivers cannot rot silently.
//! 3. **Rule-specific evidence** — D002 accepts a visibly sorted site: a
//!    `.sort*` call in code within the next [`SORT_WINDOW_LINES`] lines
//!    proves the iteration order is laundered before it can escape.
//! 4. **Canonical-cone membership** — in workspace mode ([`lint_files`]),
//!    a match inside a function that the [`crate::taint`] pass proves
//!    cannot reach canonical bytes is dropped. Matches outside any
//!    function body (statics, module-level macros) are conservatively
//!    treated as in-cone. The single-file API ([`lint_file`]) has no
//!    whole-program graph, so its cone is "everything" and behavior is
//!    unchanged from the per-file engine.
//!
//! The cone check runs *after* annotations are consumed, so a reasoned
//! waiver on an out-of-cone site still counts as used rather than
//! degrading into an unused-annotation violation when the cone shrinks.
//!
//! Everything here is deterministic: files are linted in sorted order,
//! per-file state lives in `BTreeMap`/`Vec`, and diagnostics are sorted
//! before being returned.

use crate::config::{glob_match, Config};
use crate::graph::{inline_modules, module_at, module_base, CallGraph, CodeText};
use crate::lexer::{lex, LineIndex, Token, TokenKind};
use crate::taint::Cone;
use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of the meta rule covering annotation hygiene (malformed or
/// unused `detlint::allow` comments). Not waivable.
pub const META_RULE: &str = "DLINT";

/// How many lines after a D002 match a `.sort*` call counts as "visibly
/// sorted before use".
pub const SORT_WINDOW_LINES: usize = 8;

/// Static description of one rule, for `--list-rules` and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier (`D001`...).
    pub id: &'static str,
    /// One-line summary.
    pub title: &'static str,
}

/// The shipped rule catalogue.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        title: "no wall-clock reads (Instant::now / SystemTime) outside the timing sidecar",
    },
    RuleInfo {
        id: "D002",
        title: "no order-sensitive HashMap/HashSet iteration on canonical paths",
    },
    RuleInfo {
        id: "D003",
        title: "no RNG source other than simcore::chacha",
    },
    RuleInfo {
        id: "D004",
        title: "no host-parallelism probes outside the documented sched fallback",
    },
    RuleInfo {
        id: "D005",
        title: "no stdout writes outside the CLI bins and campaign::table",
    },
    RuleInfo {
        id: "D006",
        title: "no non-total float ordering (partial_cmp().unwrap()/.expect()) — use total_cmp",
    },
    RuleInfo {
        id: "D007",
        title:
            "no completion-order merges (channel recv / join-handle collection) on canonical paths",
    },
    RuleInfo {
        id: "D008",
        title: "no environment-dependent values (std::env::var*) on canonical paths",
    },
];

/// True if `id` names a shipped (waivable) rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Workspace-relative path using `/` separators.
    pub path: String,
    /// 1-based line of the match.
    pub line: usize,
    /// 1-based character column of the match.
    pub col: usize,
    /// Rule identifier (`D001`..., or `DLINT` for meta violations).
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// An inline `// detlint::allow(...)` annotation found in a file.
#[derive(Debug)]
struct Annotation {
    /// Rules the annotation waives.
    rules: Vec<String>,
    /// 1-based line the comment sits on.
    line: usize,
    /// The line the waiver applies to: the annotation's own line (trailing
    /// comment) plus the next line containing code (so a wrapped reason
    /// spanning several comment lines still reaches the statement below).
    target_line: usize,
    /// Parse problem, if any (missing reason, unknown rule, bad syntax).
    malformed: Option<String>,
    /// Set when some match consumed the waiver.
    used: bool,
}

/// A candidate rule match before waivers are applied.
struct Match {
    rule: &'static str,
    offset: usize,
    message: String,
}

/// Whole-program context for cone-aware linting: the call graph plus the
/// canonical cone computed from it.
pub struct Analysis {
    /// The workspace call graph.
    pub graph: CallGraph,
    /// The canonical cone over that graph.
    pub cone: Cone,
}

impl Analysis {
    /// Build graph + cone for a set of `(path, contents)` files using the
    /// default seed globs ([`crate::taint::SEED_GLOBS`]).
    pub fn of(files: &[(String, String)]) -> Analysis {
        let graph = CallGraph::build(files);
        let cone = Cone::compute(&graph);
        Analysis { graph, cone }
    }

    /// Single-file context: the graph covers just this file and the cone
    /// is "everything" (no whole-program information to exclude with).
    pub fn single_file(path: &str, src: &str) -> Analysis {
        let files = [(path.to_string(), src.to_string())];
        Analysis {
            graph: CallGraph::build(&files),
            cone: Cone::everything(),
        }
    }

    /// Is the byte at `offset` of `file` inside the canonical cone?
    /// Offsets outside any function body (statics, module-level macros)
    /// are conservatively in-cone.
    pub fn in_cone(&self, file: &str, offset: usize) -> bool {
        match self.graph.enclosing_fn(file, offset) {
            Some(id) => self.cone.contains(id),
            None => true,
        }
    }

    /// Module paths that have at least one cone member, ascending.
    pub fn cone_modules(&self) -> BTreeSet<String> {
        self.cone
            .members()
            .map(|id| self.graph.fns[id].module.clone())
            .collect()
    }
}

/// Lint one in-memory file. `path` must be workspace-relative with `/`
/// separators (it determines the module path used by allowlists).
///
/// Single-file mode has no whole-program call graph, so every function is
/// treated as canonical; use [`lint_files`] for cone-aware linting.
pub fn lint_file(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let analysis = Analysis::single_file(path, src);
    lint_file_with(path, src, cfg, &analysis)
}

/// Lint one file against a prebuilt whole-program [`Analysis`].
fn lint_file_with(path: &str, src: &str, cfg: &Config, analysis: &Analysis) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let index = LineIndex::new(src);
    let mods = inline_modules(src, &tokens);
    let base = module_base(path);
    let code = CodeText::new(src, &tokens);
    let mut annotations = collect_annotations(src, &tokens, &index);
    let mut out = Vec::new();

    let mut matches = Vec::new();
    scan_simple_patterns(src, &tokens, &mut matches);
    scan_hash_iteration(src, &tokens, &mut matches);
    scan_float_ordering(&code, &mut matches);
    scan_completion_order(src, &code, &mut matches);
    scan_env_reads(&code, &mut matches);

    for m in matches {
        let (line, col) = index.line_col(src, m.offset);
        let module = module_at(&base, &mods, m.offset);
        // Layer 1: config allowlists.
        if cfg
            .allows_for(m.rule)
            .iter()
            .any(|e| glob_match(&e.glob, &module))
        {
            continue;
        }
        // Layer 2: inline annotations (same line or the line above).
        // Consumed before the cone check so a reasoned waiver on an
        // out-of-cone site does not rot into an unused annotation.
        if let Some(a) = annotations.iter_mut().find(|a| {
            a.malformed.is_none()
                && (a.line == line || a.target_line == line)
                && a.rules.iter().any(|r| r == m.rule)
        }) {
            a.used = true;
            continue;
        }
        // Layer 3: rule-specific evidence.
        if m.rule == "D002" && visibly_sorted(src, &tokens, &index, m.offset) {
            continue;
        }
        // Layer 4: canonical-cone membership.
        if !analysis.in_cone(path, m.offset) {
            continue;
        }
        out.push(Diagnostic {
            path: path.to_string(),
            line,
            col,
            rule: m.rule.to_string(),
            message: m.message,
        });
    }

    // Meta rule: malformed and unused annotations are violations too.
    for a in &annotations {
        if let Some(why) = &a.malformed {
            out.push(Diagnostic {
                path: path.to_string(),
                line: a.line,
                col: 1,
                rule: META_RULE.to_string(),
                message: format!("malformed detlint::allow annotation: {why}"),
            });
        } else if !a.used {
            out.push(Diagnostic {
                path: path.to_string(),
                line: a.line,
                col: 1,
                rule: META_RULE.to_string(),
                message: format!(
                    "unused detlint::allow({}) annotation (nothing on this or the next \
                     line matches; delete it or move it to the violation)",
                    a.rules.join(", ")
                ),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    out
}

/// Lint a batch of `(path, contents)` pairs and return all diagnostics,
/// sorted by path then position, with `detlint.toml` stale-waiver
/// diagnostics appended. Config rule ids are validated first.
///
/// This is the cone-aware entry point: a whole-program [`Analysis`] is
/// built once, rules only fire inside the canonical cone, and every
/// config allowlist entry must still intersect the cone — an entry whose
/// glob matches no cone module is reported as a stale waiver at its
/// `detlint.toml` line (mirroring the unused-annotation meta rule).
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> Result<Vec<Diagnostic>, String> {
    for rule in cfg.allow.keys() {
        if !known_rule(rule) {
            return Err(format!("detlint.toml: unknown rule `{rule}` in allowlist"));
        }
    }
    let analysis = Analysis::of(files);
    let mut sorted: Vec<&(String, String)> = files.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::new();
    for (path, src) in sorted {
        out.extend(lint_file_with(path, src, cfg, &analysis));
    }
    // Stale-waiver check: every allowlist entry must exclude something.
    let cone_modules = analysis.cone_modules();
    for (rule, entries) in &cfg.allow {
        for e in entries {
            if !cone_modules.iter().any(|m| glob_match(&e.glob, m)) {
                out.push(Diagnostic {
                    path: "detlint.toml".to_string(),
                    line: e.line,
                    col: 1,
                    rule: META_RULE.to_string(),
                    message: format!(
                        "stale allowlist entry \"{}\" for {rule}: no canonical-cone module \
                         matches this glob (the code it waived no longer reaches canonical \
                         output; delete the entry)",
                        e.glob
                    ),
                });
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

/// Extract `detlint::allow` annotations from line comments.
fn collect_annotations(src: &str, tokens: &[Token], index: &LineIndex) -> Vec<Annotation> {
    // Which 1-based lines contain any non-whitespace code?
    let mut code_lines = vec![false; index.line_count() + 2];
    for t in tokens {
        if t.kind != TokenKind::Code {
            continue;
        }
        let (mut line, _) = index.line_col(src, t.start);
        for c in src[t.start..t.end].chars() {
            if c == '\n' {
                line += 1;
            } else if !c.is_whitespace() {
                code_lines[line] = true;
            }
        }
    }
    let next_code_line = |after: usize| -> usize {
        (after + 1..code_lines.len())
            .find(|&l| code_lines[l])
            .unwrap_or(0)
    };

    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = src[t.start..t.end].trim_start_matches('/').trim();
        let Some(rest) = text.strip_prefix("detlint::allow") else {
            continue;
        };
        let (line, _) = index.line_col(src, t.start);
        let mut ann = Annotation {
            rules: Vec::new(),
            line,
            target_line: next_code_line(line),
            malformed: None,
            used: false,
        };
        let parsed = (|| -> Result<(Vec<String>, String), String> {
            let rest = rest.trim_start();
            let rest = rest
                .strip_prefix('(')
                .ok_or("expected `(` after detlint::allow")?;
            let close = rest.find(')').ok_or("missing `)`")?;
            let ids: Vec<String> = rest[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if ids.is_empty() {
                return Err("no rule ids listed".into());
            }
            for id in &ids {
                if !known_rule(id) {
                    return Err(format!("unknown rule `{id}`"));
                }
            }
            let tail = rest[close + 1..].trim_start();
            let reason = tail
                .strip_prefix(':')
                .ok_or("missing `: <reason>` (the reason is mandatory)")?
                .trim();
            if reason.is_empty() {
                return Err("empty reason (the reason is mandatory)".into());
            }
            Ok((ids, reason.to_string()))
        })();
        match parsed {
            Ok((ids, _reason)) => ann.rules = ids,
            Err(why) => ann.malformed = Some(why),
        }
        out.push(ann);
    }
    out
}

// ---------------------------------------------------------------------------
// Pattern matching
// ---------------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Is `src[at..at+pat.len()]` a word-bounded occurrence of `pat`?
fn word_bounded(src: &str, at: usize, pat: &str) -> bool {
    let b = src.as_bytes();
    let pre_ok = at == 0 || !pat.as_bytes()[0].is_ascii_alphanumeric() || !is_ident_byte(b[at - 1]);
    let end = at + pat.len();
    let last = pat.as_bytes()[pat.len() - 1];
    let post_ok = end >= b.len() || !last.is_ascii_alphanumeric() || !is_ident_byte(b[end]);
    pre_ok && post_ok
}

/// Find all word-bounded occurrences of `pat` inside code tokens.
fn code_occurrences(src: &str, tokens: &[Token], pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Code {
            continue;
        }
        let text = &src[t.start..t.end];
        let mut from = 0usize;
        while let Some(rel) = text[from..].find(pat) {
            let at = t.start + from + rel;
            if word_bounded(src, at, pat) {
                out.push(at);
            }
            from += rel + pat.len();
        }
    }
    out
}

/// Fixed textual patterns: D001, D003, D004, D005.
fn scan_simple_patterns(src: &str, tokens: &[Token], out: &mut Vec<Match>) {
    const SIMPLE: &[(&str, &str, &str)] = &[
        (
            "D001",
            "Instant::now",
            "wall-clock read `Instant::now` outside the timing-sidecar allowlist \
             (canonical output must not depend on host time)",
        ),
        (
            "D001",
            "SystemTime",
            "wall-clock source `SystemTime` outside the timing-sidecar allowlist \
             (canonical output must not depend on host time)",
        ),
        ("D003", "rand::", "RNG source other than simcore::chacha"),
        (
            "D003",
            "thread_rng",
            "RNG source other than simcore::chacha",
        ),
        (
            "D003",
            "from_entropy",
            "entropy-seeded RNG (seeds must come from the run's seed)",
        ),
        (
            "D003",
            "getrandom",
            "OS entropy source (seeds must come from the run's seed)",
        ),
        (
            "D003",
            "OsRng",
            "OS entropy source (seeds must come from the run's seed)",
        ),
        ("D003", "StdRng", "RNG source other than simcore::chacha"),
        ("D003", "SmallRng", "RNG source other than simcore::chacha"),
        (
            "D003",
            "RandomState",
            "per-process-randomized hasher (hash order must not reach canonical output)",
        ),
        (
            "D004",
            "available_parallelism",
            "host-parallelism probe outside the documented scheduler fallback \
             (worker counts are observable in sched telemetry)",
        ),
        (
            "D005",
            "println!",
            "stdout write outside the CLI bins (campaign stdout is a byte-identical \
             artifact; telemetry goes to stderr)",
        ),
        (
            "D005",
            "print!",
            "stdout write outside the CLI bins (campaign stdout is a byte-identical \
             artifact; telemetry goes to stderr)",
        ),
        (
            "D005",
            "io::stdout",
            "stdout handle outside the CLI bins (campaign stdout is a byte-identical \
             artifact; telemetry goes to stderr)",
        ),
    ];
    for (rule, pat, msg) in SIMPLE {
        for at in code_occurrences(src, tokens, pat) {
            out.push(Match {
                rule,
                offset: at,
                message: (*msg).to_string(),
            });
        }
    }
}

/// D006: `partial_cmp(..)` chained into `.unwrap()` or `.expect(..)`.
///
/// `PartialOrd` on floats is not total: a NaN makes `partial_cmp` return
/// `None`, so an unwrap/expect chain either panics mid-campaign or — when
/// "handled" upstream — silently depends on which comparison saw the NaN
/// first. `f64::total_cmp`/`f32::total_cmp` give the IEEE 754 total order
/// instead. Scanning runs over the flattened code bytes ([`CodeText`]) so
/// multi-line chains and interleaved comments cannot hide the chain;
/// `fn partial_cmp` definitions (PartialOrd impls) are not calls and do
/// not match (no leading `.`).
fn scan_float_ordering(code: &CodeText, out: &mut Vec<Match>) {
    let b = &code.bytes;
    const PAT: &[u8] = b".partial_cmp";
    let mut i = 0usize;
    while i + PAT.len() < b.len() {
        if &b[i..i + PAT.len()] != PAT || is_ident_byte(b[i + PAT.len()]) {
            i += 1;
            continue;
        }
        let start = i;
        let after = code.skip_ws(i + PAT.len());
        i += PAT.len();
        if after >= b.len() || b[after] != b'(' {
            continue;
        }
        let close = code.match_paren(after);
        let j = code.skip_ws(close + 1);
        let chained_into = |method: &[u8]| -> bool {
            j < b.len()
                && b[j] == b'.'
                && b[j + 1..].starts_with(method)
                && b[j + 1 + method.len()..]
                    .first()
                    .is_none_or(|&n| !is_ident_byte(n))
        };
        if chained_into(b"unwrap") || chained_into(b"expect") {
            out.push(Match {
                rule: "D006",
                offset: code.offs[start + 1],
                message: "non-total float ordering: `partial_cmp(..)` chained into \
                          unwrap/expect panics on NaN (or silently depends on where the \
                          NaN appears); use `total_cmp` for the IEEE 754 total order"
                    .to_string(),
            });
        }
    }
}

/// D007: completion-order merge primitives.
///
/// Channel receives and join-handle collection yield results in the order
/// workers *finish*, which depends on host scheduling. Canonical data must
/// be merged in grid order (the campaign result-slot barrier) instead.
/// `.join()` only matches with empty parens, so `slice.join(", ")` — a
/// string join, deterministic — is not a completion-order primitive.
fn scan_completion_order(src: &str, code: &CodeText, out: &mut Vec<Match>) {
    let b = &code.bytes;
    let push = |out: &mut Vec<Match>, off: usize, what: &str| {
        out.push(Match {
            rule: "D007",
            offset: off,
            message: format!(
                "completion-order merge: `{what}` yields results in worker-finish order, \
                 which depends on host scheduling; merge canonical data in grid order \
                 (campaign result slots) instead"
            ),
        });
    };
    // `.recv()` / `.try_recv()` / `.recv_timeout(..)` — channel receives.
    const CHANNEL_METHODS: &[&str] = &[".recv", ".try_recv", ".recv_timeout"];
    for pat in CHANNEL_METHODS {
        let p = pat.as_bytes();
        let mut i = 0usize;
        while i + p.len() < b.len() {
            if &b[i..i + p.len()] != p || is_ident_byte(b[i + p.len()]) {
                i += 1;
                continue;
            }
            let after = code.skip_ws(i + p.len());
            let at = code.offs[i + 1];
            i += p.len();
            if after < b.len() && b[after] == b'(' {
                push(out, at, &pat[1..]);
            }
        }
    }
    // `mpsc::channel` / `mpsc::sync_channel` construction.
    for pat in ["mpsc::channel", "mpsc::sync_channel"] {
        let p = pat.as_bytes();
        let mut i = 0usize;
        while i + p.len() <= b.len() {
            let bounded = &b[i..i + p.len()] == p
                && (i == 0 || !is_ident_byte(b[i - 1]))
                && (i + p.len() == b.len() || !is_ident_byte(b[i + p.len()]));
            if bounded {
                push(out, code.offs[i], pat);
                i += p.len();
            } else {
                i += 1;
            }
        }
    }
    // `.join()` with *empty* parens: a join-handle wait. The emptiness
    // check runs on the raw source — in flattened code a string argument
    // vanishes and `.join(", ")` would look exactly like `.join()`.
    const JOIN: &[u8] = b".join";
    let mut i = 0usize;
    while i + JOIN.len() < b.len() {
        if &b[i..i + JOIN.len()] != JOIN || is_ident_byte(b[i + JOIN.len()]) {
            i += 1;
            continue;
        }
        let after = code.skip_ws(i + JOIN.len());
        let at = code.offs[i + 1];
        i += JOIN.len();
        if after >= b.len() || b[after] != b'(' {
            continue;
        }
        let sb = src.as_bytes();
        let mut k = code.offs[after] + 1;
        while k < sb.len() && sb[k].is_ascii_whitespace() {
            k += 1;
        }
        if k < sb.len() && sb[k] == b')' {
            push(out, at, "join()");
        }
    }
}

/// D008: process-environment reads (`std::env::var` and friends).
///
/// Environment variables differ per host and per shell, so a value read
/// from them that reaches canonical bytes breaks cross-machine
/// reproducibility. Configuration must arrive as explicit parameters that
/// the run record captures. (`available_parallelism` is the same hazard
/// and stays under D004.)
fn scan_env_reads(code: &CodeText, out: &mut Vec<Match>) {
    let b = &code.bytes;
    for pat in ["env::var", "env::vars", "env::var_os", "env::vars_os"] {
        let p = pat.as_bytes();
        let mut i = 0usize;
        while i + p.len() <= b.len() {
            let bounded = &b[i..i + p.len()] == p
                && (i == 0 || !is_ident_byte(b[i - 1]))
                && (i + p.len() == b.len() || !is_ident_byte(b[i + p.len()]));
            if bounded {
                out.push(Match {
                    rule: "D008",
                    offset: code.offs[i],
                    message: format!(
                        "environment-dependent value: `{pat}` differs per host/shell and \
                         breaks cross-machine reproducibility; pass configuration as an \
                         explicit parameter the run record captures"
                    ),
                });
                i += p.len();
            } else {
                i += 1;
            }
        }
    }
}

/// D002: iteration over values declared as `HashMap`/`HashSet`.
///
/// Tracking is per-file and name-based: every identifier bound or typed as
/// a hash collection is collected, then `.iter()` / `.keys()` / `.values()`
/// / `.drain()` / `.retain()` / `.into_*()` calls on those names — and
/// direct `for _ in &name` loops — are candidate violations.
fn scan_hash_iteration(src: &str, tokens: &[Token], out: &mut Vec<Match>) {
    let names = hash_typed_names(src, tokens);
    if names.is_empty() {
        return;
    }
    const METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
        ".retain(",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
    ];
    let b = src.as_bytes();
    for pat in METHODS {
        for at in code_occurrences(src, tokens, pat) {
            if let Some(name) = receiver_name(src, at) {
                if names.contains(&name) {
                    let method = pat.trim_start_matches('.').trim_end_matches(['(', ')']);
                    out.push(Match {
                        rule: "D002",
                        offset: at,
                        message: format!(
                            "iteration over hash collection `{name}` (`.{method}`) — hash \
                             order is nondeterministic; sort before use, switch to BTreeMap, \
                             or annotate why order cannot reach canonical output"
                        ),
                    });
                }
            }
        }
    }
    // `for x in &name {` / `for x in name {` direct loops.
    for name in &names {
        for at in code_occurrences(src, tokens, name) {
            let end = at + name.len();
            // Ahead: whitespace then `{` (a `.method()` chain is covered above).
            let mut j = end;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j >= b.len() || b[j] != b'{' {
                continue;
            }
            if preceded_by_for_in(src, at) {
                out.push(Match {
                    rule: "D002",
                    offset: at,
                    message: format!(
                        "direct `for` iteration over hash collection `{name}` — hash order \
                         is nondeterministic; sort before use, switch to BTreeMap, or \
                         annotate why order cannot reach canonical output"
                    ),
                });
            }
        }
    }
}

/// Collect identifiers bound or typed as `HashMap`/`HashSet` in this file.
fn hash_typed_names(src: &str, tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for ty in ["HashMap", "HashSet"] {
        for at in code_occurrences(src, tokens, ty) {
            // `name: HashMap<...>` (field or typed binding), possibly via a
            // qualified path `name: std::collections::HashMap<...>`.
            if let Some(name) = ascription_name(src, at) {
                names.insert(name);
            }
            // `let [mut] name = HashMap::new()` / `with_capacity(...)`.
            let after = &src[at + ty.len()..];
            if after.starts_with("::") {
                if let Some(name) = assignment_name(src, at) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// For a type occurrence at `at`, walk back over `::`-qualified path
/// segments to a single `:` and return the identifier before it.
fn ascription_name(src: &str, at: usize) -> Option<String> {
    let b = src.as_bytes();
    let mut i = at;
    loop {
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i >= 2 && b[i - 1] == b':' && b[i - 2] == b':' {
            // Path segment: skip `::` and the segment before it.
            i -= 2;
            while i > 0 && b[i - 1].is_ascii_whitespace() {
                i -= 1;
            }
            let seg_end = i;
            while i > 0 && is_ident_byte(b[i - 1]) {
                i -= 1;
            }
            if i == seg_end {
                return None;
            }
            continue;
        }
        if i >= 1 && b[i - 1] == b':' {
            i -= 1;
            while i > 0 && b[i - 1].is_ascii_whitespace() {
                i -= 1;
            }
            let end = i;
            while i > 0 && is_ident_byte(b[i - 1]) {
                i -= 1;
            }
            if i == end {
                return None;
            }
            return Some(src[i..end].to_string());
        }
        return None;
    }
}

/// For `... = HashMap::...` at `at`, return the identifier left of `=`.
fn assignment_name(src: &str, at: usize) -> Option<String> {
    let b = src.as_bytes();
    let mut i = at;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 || b[i - 1] != b'=' || (i >= 2 && matches!(b[i - 2], b'=' | b'!' | b'<' | b'>')) {
        return None;
    }
    i -= 1;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_byte(b[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(src[i..end].to_string())
}

/// Resolve the receiver identifier of a `.method()` match at `at` (which
/// points at the `.`), skipping whitespace (multi-line chains) and an
/// optional `self.` prefix.
///
/// `other.name.iter()` (a field of some *other* value) resolves to `None`:
/// tracked names come from this file's own fields and locals, so a
/// same-named field reached through another struct would be a false
/// positive (e.g. a `Vec` field shadowing a tracked map's name).
fn receiver_name(src: &str, at: usize) -> Option<String> {
    let b = src.as_bytes();
    let mut i = at;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_byte(b[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    let name = &src[i..end];
    if name == "self" {
        return None; // bare `self.iter()` — not a tracked collection
    }
    // Reject `<expr>.name.method()` unless the prefix is exactly `self.`.
    let mut j = i;
    while j > 0 && b[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    if j > 0 && b[j - 1] == b'.' {
        let prefix = src[..j - 1].trim_end();
        let is_self = prefix.ends_with("self")
            && (prefix.len() == 4 || !is_ident_byte(prefix.as_bytes()[prefix.len() - 5]));
        if !is_self {
            return None;
        }
    }
    Some(name.to_string())
}

/// Is the tracked-name occurrence at `at` the sequence `for ... in [&][mut]
/// [self.] name`? Checks backwards for the `in` keyword.
fn preceded_by_for_in(src: &str, at: usize) -> bool {
    let b = src.as_bytes();
    let mut i = at;
    // Optional `self.` prefix.
    if i >= 5 && &src[i - 5..i] == "self." {
        i -= 5;
    }
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    // Optional `mut` (as in `in &mut map`).
    if i >= 3 && &src[i - 3..i] == "mut" && (i == 3 || !is_ident_byte(b[i - 4])) {
        i -= 3;
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
    }
    // Optional `&`.
    if i >= 1 && b[i - 1] == b'&' {
        i -= 1;
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
    }
    i >= 2 && &src[i - 2..i] == "in" && (i == 2 || !is_ident_byte(b[i - 3]))
}

/// Does a `.sort*` call appear in code within [`SORT_WINDOW_LINES`] lines
/// after the match at `at`? (The "visibly sorted before use" escape.)
fn visibly_sorted(src: &str, tokens: &[Token], index: &LineIndex, at: usize) -> bool {
    let (line, _) = index.line_col(src, at);
    let end = index
        .line_start(line + SORT_WINDOW_LINES + 1)
        .unwrap_or(src.len());
    for t in tokens {
        if t.kind != TokenKind::Code || t.end <= at || t.start >= end {
            continue;
        }
        let s = t.start.max(at);
        let e = t.end.min(end);
        if src[s..e].contains(".sort") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_file(path, src, &Config::default())
    }

    #[test]
    fn strings_and_comments_never_match() {
        let src = concat!(
            "fn f() {\n",
            "    let _ = \"Instant::now inside a string\";\n",
            "    // Instant::now inside a comment\n",
            "    /* println! inside a block comment */\n",
            "    let _ = r#\"println!(raw)\"#;\n",
            "}\n",
        );
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d001_fires_and_eprintln_does_not_trip_d005() {
        let src = "fn f() { let t = std::time::Instant::now(); eprintln!(\"{t:?}\"); }";
        let d = lint("crates/pfs/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "D001");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn annotation_waives_and_is_used() {
        let src = "fn f() {\n    // detlint::allow(D001): sidecar timing only\n    let t = std::time::Instant::now();\n    let _ = t;\n}\n";
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn annotation_without_reason_is_meta_violation() {
        let src =
            "fn f() {\n    // detlint::allow(D001):\n    let t = std::time::Instant::now();\n}\n";
        let d = lint("crates/pfs/src/lib.rs", src);
        // The annotation is malformed, so the D001 still fires AND the
        // annotation is reported.
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|x| x.rule == "D001"));
        assert!(d.iter().any(|x| x.rule == META_RULE));
    }

    #[test]
    fn unused_annotation_is_meta_violation() {
        let src = "// detlint::allow(D001): stale waiver\nfn f() {}\n";
        let d = lint("crates/pfs/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, META_RULE);
        assert!(d[0].message.contains("unused"));
    }

    #[test]
    fn d002_tracks_fields_and_locals() {
        let src = "
use std::collections::HashMap;
struct S { agg: HashMap<u32, u32> }
impl S {
    fn f(&self) {
        for (k, v) in self.agg.iter() { let _ = (k, v); }
    }
}
fn g() {
    let mut m = HashMap::new();
    m.insert(1, 2);
    for x in &m { let _ = x; }
}
";
        let d = lint("crates/pfs/src/lib.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "D002"));
        assert!(d[0].message.contains("agg"));
        assert!(d[1].message.contains('m'));
    }

    #[test]
    fn d002_sorted_site_is_waived() {
        let src = "
use std::collections::HashMap;
fn f(m: HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}
";
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d002_vec_iteration_is_not_flagged() {
        let src = "
use std::collections::HashMap;
fn f(v: Vec<u32>, m: HashMap<u32, u32>) -> u32 {
    let _ = m.len();
    v.iter().sum()
}
";
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allowlist_by_module_glob() {
        let cfg = Config::parse("[rules.D005]\nallow = [\"*::bin::*\"]\n").unwrap();
        let src = "fn main() { println!(\"report\"); }";
        assert!(lint_file("crates/stellar/src/bin/stellar-tune.rs", src, &cfg).is_empty());
        assert_eq!(lint_file("crates/stellar/src/lib.rs", src, &cfg).len(), 1);
    }

    #[test]
    fn lint_files_rejects_unknown_config_rule() {
        let cfg = Config::parse("[rules.D999]\nallow = [\"x\"]\n").unwrap();
        assert!(lint_files(&[], &cfg).is_err());
    }

    #[test]
    fn d006_partial_cmp_unwrap_and_expect_fire() {
        let src = "
fn f(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\"));
}
";
        let d = lint("crates/pfs/src/lib.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "D006"));
    }

    #[test]
    fn d006_multiline_chain_fires() {
        let src = "
fn f(v: &mut Vec<(f64, u32)>) {
    v.sort_by(|a, b| {
        b.0.partial_cmp(&a.0) // a comment splitting the chain
            .expect(\"finite\")
            .then(a.1.cmp(&b.1))
    });
}
";
        let d = lint("crates/pfs/src/lib.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "D006");
    }

    #[test]
    fn d006_total_cmp_and_unwrap_or_are_clean() {
        let src = "
fn f(v: &mut Vec<f64>) -> std::cmp::Ordering {
    v.sort_by(|a, b| a.total_cmp(b));
    v[0].partial_cmp(&v[1]).unwrap_or(std::cmp::Ordering::Equal)
}
";
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d006_partial_ord_impl_is_not_flagged() {
        let src = "
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Ev) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
";
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d007_channel_and_join_fire() {
        let src = "
fn f(rx: std::sync::mpsc::Receiver<u32>, h: std::thread::JoinHandle<()>) {
    let (_tx, _rx2) = std::sync::mpsc::channel::<u32>();
    while let Ok(v) = rx.recv() { let _ = v; }
    h.join().ok();
}
";
        let d = lint("crates/pfs/src/lib.rs", src);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "D007"));
    }

    #[test]
    fn d007_string_join_is_clean() {
        let src = "fn f(parts: &[String]) -> String { parts.join(\", \") }";
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d008_env_reads_fire() {
        let src = "
fn f() -> Option<String> {
    for (_k, _v) in std::env::vars() {}
    std::env::var(\"STELLAR_SCALE\").ok()
}
";
        let d = lint("crates/pfs/src/lib.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "D008"));
    }

    #[test]
    fn d008_unrelated_var_names_are_clean() {
        let src = "fn f() { let env_var = 1; let _ = env_var; }";
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    // --- cone-aware workspace mode ---

    fn ws(files: &[(&str, &str)], cfg: &Config) -> Vec<Diagnostic> {
        let files: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        lint_files(&files, cfg).unwrap()
    }

    /// A seed-module file plus a caller and an unconnected island.
    const SEED: (&str, &str) = ("crates/stellar/src/obs.rs", "pub fn emit() -> u64 { 42 }\n");

    #[test]
    fn out_of_cone_violation_is_dropped_in_workspace_mode() {
        let island = (
            "crates/bench/src/lib.rs",
            "pub fn island() { let _t = std::time::Instant::now(); }\n",
        );
        let d = ws(&[SEED, island], &Config::default());
        assert!(d.is_empty(), "{d:?}");
        // The same file linted alone (cone = everything) does fire.
        assert_eq!(lint(island.0, island.1).len(), 1);
    }

    #[test]
    fn in_cone_violation_fires_in_workspace_mode() {
        let caller = (
            "crates/stellar/src/session.rs",
            "pub fn step() -> u64 { let _t = std::time::Instant::now(); crate::obs::emit() }\n",
        );
        let d = ws(&[SEED, caller], &Config::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "D001");
        assert_eq!(d[0].path, caller.0);
    }

    #[test]
    fn top_level_matches_are_conservatively_in_cone() {
        // A match outside any fn body (module-level macro fragment) has no
        // enclosing function; it must still fire in workspace mode.
        let island = (
            "crates/bench/src/lib.rs",
            "pub static NAME: &str = \"x\";\nfn lone() {}\nmod t { pub const N: u32 = 1; }\n\
             macro_rules! m { () => { std::time::SystemTime::now() }; }\n",
        );
        let d = ws(&[SEED, island], &Config::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "D001");
    }

    #[test]
    fn annotation_on_out_of_cone_site_still_counts_as_used() {
        let island = (
            "crates/bench/src/lib.rs",
            "pub fn island() {\n    // detlint::allow(D001): harness-only timing\n    \
             let _t = std::time::Instant::now();\n}\n",
        );
        let d = ws(&[SEED, island], &Config::default());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn stale_allowlist_entry_is_reported_with_its_line() {
        let cfg = Config::parse("[rules.D001]\nallow = [\n    \"nowhere::*\",\n]\n").unwrap();
        let d = ws(&[SEED], &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].path, "detlint.toml");
        assert_eq!(d[0].line, 3);
        assert_eq!(d[0].rule, META_RULE);
        assert!(d[0].message.contains("stale"));
    }

    #[test]
    fn live_allowlist_entry_is_not_stale() {
        let cfg = Config::parse("[rules.D001]\nallow = [\"stellar::obs\"]\n").unwrap();
        let d = ws(&[SEED], &cfg);
        assert!(d.is_empty(), "{d:?}");
    }
}
