//! The determinism rule catalogue and the module-path-aware engine.
//!
//! Rules are textual: they match patterns inside the *code* spans produced
//! by [`crate::lexer`] (comments and string/char literals can never match),
//! resolve each match to a module path (crate path from the file location
//! plus any inline `mod name { ... }` blocks containing the match), and
//! then apply three waiver layers in order:
//!
//! 1. **Config allowlists** — module-path globs from `detlint.toml`
//!    ([`crate::config::Config`]), for whole tools whose job is the thing
//!    the rule forbids (e.g. the perf harness reads wall clocks).
//! 2. **Inline annotations** — `// detlint::allow(D00x): <reason>` on the
//!    match line or the line directly above. The reason is mandatory;
//!    malformed or *unused* annotations are themselves violations
//!    ([`META_RULE`]), so waivers cannot rot silently.
//! 3. **Rule-specific evidence** — D002 accepts a visibly sorted site: a
//!    `.sort*` call in code within the next [`SORT_WINDOW_LINES`] lines
//!    proves the iteration order is laundered before it can escape.
//!
//! Everything here is deterministic: files are linted in sorted order,
//! per-file state lives in `BTreeMap`/`Vec`, and diagnostics are sorted
//! before being returned.

use crate::config::{glob_match, Config};
use crate::lexer::{lex, LineIndex, Token, TokenKind};
use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of the meta rule covering annotation hygiene (malformed or
/// unused `detlint::allow` comments). Not waivable.
pub const META_RULE: &str = "DLINT";

/// How many lines after a D002 match a `.sort*` call counts as "visibly
/// sorted before use".
pub const SORT_WINDOW_LINES: usize = 8;

/// Static description of one rule, for `--list-rules` and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier (`D001`...).
    pub id: &'static str,
    /// One-line summary.
    pub title: &'static str,
}

/// The shipped rule catalogue.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        title: "no wall-clock reads (Instant::now / SystemTime) outside the timing sidecar",
    },
    RuleInfo {
        id: "D002",
        title: "no order-sensitive HashMap/HashSet iteration on canonical paths",
    },
    RuleInfo {
        id: "D003",
        title: "no RNG source other than simcore::chacha",
    },
    RuleInfo {
        id: "D004",
        title: "no host-parallelism probes outside the documented sched fallback",
    },
    RuleInfo {
        id: "D005",
        title: "no stdout writes outside the CLI bins and campaign::table",
    },
];

/// True if `id` names a shipped (waivable) rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Workspace-relative path using `/` separators.
    pub path: String,
    /// 1-based line of the match.
    pub line: usize,
    /// 1-based character column of the match.
    pub col: usize,
    /// Rule identifier (`D001`..., or `DLINT` for meta violations).
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// An inline `// detlint::allow(...)` annotation found in a file.
#[derive(Debug)]
struct Annotation {
    /// Rules the annotation waives.
    rules: Vec<String>,
    /// 1-based line the comment sits on.
    line: usize,
    /// The line the waiver applies to: the annotation's own line (trailing
    /// comment) plus the next line containing code (so a wrapped reason
    /// spanning several comment lines still reaches the statement below).
    target_line: usize,
    /// Parse problem, if any (missing reason, unknown rule, bad syntax).
    malformed: Option<String>,
    /// Set when some match consumed the waiver.
    used: bool,
}

/// A candidate rule match before waivers are applied.
struct Match {
    rule: &'static str,
    offset: usize,
    message: String,
}

/// Lint one in-memory file. `path` must be workspace-relative with `/`
/// separators (it determines the module path used by allowlists).
pub fn lint_file(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let index = LineIndex::new(src);
    let mods = inline_modules(src, &tokens);
    let base = module_base(path);
    let mut annotations = collect_annotations(src, &tokens, &index);
    let mut out = Vec::new();

    let mut matches = Vec::new();
    scan_simple_patterns(src, &tokens, &mut matches);
    scan_hash_iteration(src, &tokens, &mut matches);

    for m in matches {
        let (line, col) = index.line_col(src, m.offset);
        let module = module_at(&base, &mods, m.offset);
        // Layer 1: config allowlists.
        if cfg
            .allows_for(m.rule)
            .iter()
            .any(|g| glob_match(g, &module))
        {
            continue;
        }
        // Layer 2: inline annotations (same line or the line above).
        if let Some(a) = annotations.iter_mut().find(|a| {
            a.malformed.is_none()
                && (a.line == line || a.target_line == line)
                && a.rules.iter().any(|r| r == m.rule)
        }) {
            a.used = true;
            continue;
        }
        // Layer 3: rule-specific evidence.
        if m.rule == "D002" && visibly_sorted(src, &tokens, &index, m.offset) {
            continue;
        }
        out.push(Diagnostic {
            path: path.to_string(),
            line,
            col,
            rule: m.rule.to_string(),
            message: m.message,
        });
    }

    // Meta rule: malformed and unused annotations are violations too.
    for a in &annotations {
        if let Some(why) = &a.malformed {
            out.push(Diagnostic {
                path: path.to_string(),
                line: a.line,
                col: 1,
                rule: META_RULE.to_string(),
                message: format!("malformed detlint::allow annotation: {why}"),
            });
        } else if !a.used {
            out.push(Diagnostic {
                path: path.to_string(),
                line: a.line,
                col: 1,
                rule: META_RULE.to_string(),
                message: format!(
                    "unused detlint::allow({}) annotation (nothing on this or the next \
                     line matches; delete it or move it to the violation)",
                    a.rules.join(", ")
                ),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    out
}

/// Lint a batch of `(path, contents)` pairs and return all diagnostics,
/// sorted by path then position. Config rule ids are validated first.
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> Result<Vec<Diagnostic>, String> {
    for rule in cfg.allow.keys() {
        if !known_rule(rule) {
            return Err(format!("detlint.toml: unknown rule `{rule}` in allowlist"));
        }
    }
    let mut sorted: Vec<&(String, String)> = files.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::new();
    for (path, src) in sorted {
        out.extend(lint_file(path, src, cfg));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Module paths
// ---------------------------------------------------------------------------

/// Package name of the workspace-root umbrella crate.
const UMBRELLA: &str = "stellar_repro";

/// Derive the crate-level module path for a workspace-relative file path.
fn module_base(path: &str) -> String {
    let norm = |s: &str| s.replace('-', "_");
    let parts: Vec<&str> = path.split('/').collect();
    let joined = |crate_name: &str, tail: &[&str]| -> String {
        let mut segs = vec![norm(crate_name)];
        for (i, p) in tail.iter().enumerate() {
            let is_last = i + 1 == tail.len();
            let p = p.strip_suffix(".rs").unwrap_or(p);
            if is_last && (p == "mod" || p == "lib") {
                continue;
            }
            segs.push(norm(p));
        }
        segs.join("::")
    };
    match parts.as_slice() {
        ["crates", c, "src", "main.rs"] => format!("{}::bin::main", norm(c)),
        ["crates", c, "src", "bin", rest @ ..] => {
            format!(
                "{}::bin::{}",
                norm(c),
                joined("", rest).trim_start_matches("::")
            )
        }
        ["crates", c, "src", rest @ ..] => joined(c, rest),
        ["crates", c, "benches", rest @ ..] => {
            format!(
                "{}::benches::{}",
                norm(c),
                joined("", rest).trim_start_matches("::")
            )
        }
        ["crates", c, "tests", rest @ ..] => {
            format!(
                "{}::tests::{}",
                norm(c),
                joined("", rest).trim_start_matches("::")
            )
        }
        ["src", rest @ ..] => joined(UMBRELLA, rest),
        ["tests", rest @ ..] => joined("tests", rest),
        ["examples", rest @ ..] => joined("examples", rest),
        _ => joined("", parts.as_slice())
            .trim_start_matches("::")
            .to_string(),
    }
}

/// An inline `mod name { ... }` block span.
struct ModSpan {
    name: String,
    start: usize,
    end: usize,
}

/// Find inline module blocks by scanning code tokens for `mod <ident> {`
/// and matching braces (only braces in code count, so string contents
/// cannot unbalance the scan).
fn inline_modules(src: &str, tokens: &[Token]) -> Vec<ModSpan> {
    let mut opens: Vec<(String, usize)> = Vec::new(); // (name, open-brace offset)
    for t in tokens {
        if t.kind != TokenKind::Code {
            continue;
        }
        let text = &src[t.start..t.end];
        let bytes = text.as_bytes();
        let mut from = 0usize;
        while let Some(rel) = text[from..].find("mod") {
            let at = from + rel;
            from = at + 3;
            let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            let after = at + 3;
            if !before_ok || after >= bytes.len() || !bytes[after].is_ascii_whitespace() {
                continue;
            }
            // Read the identifier after `mod`.
            let mut j = after;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if j == name_start {
                continue;
            }
            let name = text[name_start..j].to_string();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'{' {
                opens.push((name, t.start + j));
            }
        }
    }

    // Match each open brace with its close by walking all code braces once.
    let mut spans = Vec::new();
    let mut stack: Vec<(usize, Option<usize>)> = Vec::new(); // (offset, opens-index)
    let mut open_idx = 0usize;
    for t in tokens {
        if t.kind != TokenKind::Code {
            continue;
        }
        for (rel, b) in src.as_bytes()[t.start..t.end].iter().enumerate() {
            let off = t.start + rel;
            match b {
                b'{' => {
                    let tag = if open_idx < opens.len() && opens[open_idx].1 == off {
                        open_idx += 1;
                        Some(open_idx - 1)
                    } else {
                        None
                    };
                    stack.push((off, tag));
                }
                b'}' => {
                    if let Some((start, Some(i))) = stack.pop() {
                        spans.push(ModSpan {
                            name: opens[i].0.clone(),
                            start,
                            end: off,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    // Unclosed module blocks (truncated input): run to EOF.
    for (start, tag) in stack {
        if let Some(i) = tag {
            spans.push(ModSpan {
                name: opens[i].0.clone(),
                start,
                end: src.len(),
            });
        }
    }
    spans.sort_by_key(|s| s.start);
    spans
}

/// Full module path of a byte offset: file base plus enclosing inline mods.
fn module_at(base: &str, mods: &[ModSpan], offset: usize) -> String {
    let mut path = base.to_string();
    for m in mods {
        if m.start < offset && offset < m.end {
            path.push_str("::");
            path.push_str(&m.name);
        }
    }
    path
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

/// Extract `detlint::allow` annotations from line comments.
fn collect_annotations(src: &str, tokens: &[Token], index: &LineIndex) -> Vec<Annotation> {
    // Which 1-based lines contain any non-whitespace code?
    let mut code_lines = vec![false; index.line_count() + 2];
    for t in tokens {
        if t.kind != TokenKind::Code {
            continue;
        }
        let (mut line, _) = index.line_col(src, t.start);
        for c in src[t.start..t.end].chars() {
            if c == '\n' {
                line += 1;
            } else if !c.is_whitespace() {
                code_lines[line] = true;
            }
        }
    }
    let next_code_line = |after: usize| -> usize {
        (after + 1..code_lines.len())
            .find(|&l| code_lines[l])
            .unwrap_or(0)
    };

    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = src[t.start..t.end].trim_start_matches('/').trim();
        let Some(rest) = text.strip_prefix("detlint::allow") else {
            continue;
        };
        let (line, _) = index.line_col(src, t.start);
        let mut ann = Annotation {
            rules: Vec::new(),
            line,
            target_line: next_code_line(line),
            malformed: None,
            used: false,
        };
        let parsed = (|| -> Result<(Vec<String>, String), String> {
            let rest = rest.trim_start();
            let rest = rest
                .strip_prefix('(')
                .ok_or("expected `(` after detlint::allow")?;
            let close = rest.find(')').ok_or("missing `)`")?;
            let ids: Vec<String> = rest[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if ids.is_empty() {
                return Err("no rule ids listed".into());
            }
            for id in &ids {
                if !known_rule(id) {
                    return Err(format!("unknown rule `{id}`"));
                }
            }
            let tail = rest[close + 1..].trim_start();
            let reason = tail
                .strip_prefix(':')
                .ok_or("missing `: <reason>` (the reason is mandatory)")?
                .trim();
            if reason.is_empty() {
                return Err("empty reason (the reason is mandatory)".into());
            }
            Ok((ids, reason.to_string()))
        })();
        match parsed {
            Ok((ids, _reason)) => ann.rules = ids,
            Err(why) => ann.malformed = Some(why),
        }
        out.push(ann);
    }
    out
}

// ---------------------------------------------------------------------------
// Pattern matching
// ---------------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Is `src[at..at+pat.len()]` a word-bounded occurrence of `pat`?
fn word_bounded(src: &str, at: usize, pat: &str) -> bool {
    let b = src.as_bytes();
    let pre_ok = at == 0 || !pat.as_bytes()[0].is_ascii_alphanumeric() || !is_ident_byte(b[at - 1]);
    let end = at + pat.len();
    let last = pat.as_bytes()[pat.len() - 1];
    let post_ok = end >= b.len() || !last.is_ascii_alphanumeric() || !is_ident_byte(b[end]);
    pre_ok && post_ok
}

/// Find all word-bounded occurrences of `pat` inside code tokens.
fn code_occurrences(src: &str, tokens: &[Token], pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Code {
            continue;
        }
        let text = &src[t.start..t.end];
        let mut from = 0usize;
        while let Some(rel) = text[from..].find(pat) {
            let at = t.start + from + rel;
            if word_bounded(src, at, pat) {
                out.push(at);
            }
            from += rel + pat.len();
        }
    }
    out
}

/// Fixed textual patterns: D001, D003, D004, D005.
fn scan_simple_patterns(src: &str, tokens: &[Token], out: &mut Vec<Match>) {
    const SIMPLE: &[(&str, &str, &str)] = &[
        (
            "D001",
            "Instant::now",
            "wall-clock read `Instant::now` outside the timing-sidecar allowlist \
             (canonical output must not depend on host time)",
        ),
        (
            "D001",
            "SystemTime",
            "wall-clock source `SystemTime` outside the timing-sidecar allowlist \
             (canonical output must not depend on host time)",
        ),
        ("D003", "rand::", "RNG source other than simcore::chacha"),
        (
            "D003",
            "thread_rng",
            "RNG source other than simcore::chacha",
        ),
        (
            "D003",
            "from_entropy",
            "entropy-seeded RNG (seeds must come from the run's seed)",
        ),
        (
            "D003",
            "getrandom",
            "OS entropy source (seeds must come from the run's seed)",
        ),
        (
            "D003",
            "OsRng",
            "OS entropy source (seeds must come from the run's seed)",
        ),
        ("D003", "StdRng", "RNG source other than simcore::chacha"),
        ("D003", "SmallRng", "RNG source other than simcore::chacha"),
        (
            "D003",
            "RandomState",
            "per-process-randomized hasher (hash order must not reach canonical output)",
        ),
        (
            "D004",
            "available_parallelism",
            "host-parallelism probe outside the documented scheduler fallback \
             (worker counts are observable in sched telemetry)",
        ),
        (
            "D005",
            "println!",
            "stdout write outside the CLI bins (campaign stdout is a byte-identical \
             artifact; telemetry goes to stderr)",
        ),
        (
            "D005",
            "print!",
            "stdout write outside the CLI bins (campaign stdout is a byte-identical \
             artifact; telemetry goes to stderr)",
        ),
        (
            "D005",
            "io::stdout",
            "stdout handle outside the CLI bins (campaign stdout is a byte-identical \
             artifact; telemetry goes to stderr)",
        ),
    ];
    for (rule, pat, msg) in SIMPLE {
        for at in code_occurrences(src, tokens, pat) {
            out.push(Match {
                rule,
                offset: at,
                message: (*msg).to_string(),
            });
        }
    }
}

/// D002: iteration over values declared as `HashMap`/`HashSet`.
///
/// Tracking is per-file and name-based: every identifier bound or typed as
/// a hash collection is collected, then `.iter()` / `.keys()` / `.values()`
/// / `.drain()` / `.retain()` / `.into_*()` calls on those names — and
/// direct `for _ in &name` loops — are candidate violations.
fn scan_hash_iteration(src: &str, tokens: &[Token], out: &mut Vec<Match>) {
    let names = hash_typed_names(src, tokens);
    if names.is_empty() {
        return;
    }
    const METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
        ".retain(",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
    ];
    let b = src.as_bytes();
    for pat in METHODS {
        for at in code_occurrences(src, tokens, pat) {
            if let Some(name) = receiver_name(src, at) {
                if names.contains(&name) {
                    let method = pat.trim_start_matches('.').trim_end_matches(['(', ')']);
                    out.push(Match {
                        rule: "D002",
                        offset: at,
                        message: format!(
                            "iteration over hash collection `{name}` (`.{method}`) — hash \
                             order is nondeterministic; sort before use, switch to BTreeMap, \
                             or annotate why order cannot reach canonical output"
                        ),
                    });
                }
            }
        }
    }
    // `for x in &name {` / `for x in name {` direct loops.
    for name in &names {
        for at in code_occurrences(src, tokens, name) {
            let end = at + name.len();
            // Ahead: whitespace then `{` (a `.method()` chain is covered above).
            let mut j = end;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j >= b.len() || b[j] != b'{' {
                continue;
            }
            if preceded_by_for_in(src, at) {
                out.push(Match {
                    rule: "D002",
                    offset: at,
                    message: format!(
                        "direct `for` iteration over hash collection `{name}` — hash order \
                         is nondeterministic; sort before use, switch to BTreeMap, or \
                         annotate why order cannot reach canonical output"
                    ),
                });
            }
        }
    }
}

/// Collect identifiers bound or typed as `HashMap`/`HashSet` in this file.
fn hash_typed_names(src: &str, tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for ty in ["HashMap", "HashSet"] {
        for at in code_occurrences(src, tokens, ty) {
            // `name: HashMap<...>` (field or typed binding), possibly via a
            // qualified path `name: std::collections::HashMap<...>`.
            if let Some(name) = ascription_name(src, at) {
                names.insert(name);
            }
            // `let [mut] name = HashMap::new()` / `with_capacity(...)`.
            let after = &src[at + ty.len()..];
            if after.starts_with("::") {
                if let Some(name) = assignment_name(src, at) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// For a type occurrence at `at`, walk back over `::`-qualified path
/// segments to a single `:` and return the identifier before it.
fn ascription_name(src: &str, at: usize) -> Option<String> {
    let b = src.as_bytes();
    let mut i = at;
    loop {
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i >= 2 && b[i - 1] == b':' && b[i - 2] == b':' {
            // Path segment: skip `::` and the segment before it.
            i -= 2;
            while i > 0 && b[i - 1].is_ascii_whitespace() {
                i -= 1;
            }
            let seg_end = i;
            while i > 0 && is_ident_byte(b[i - 1]) {
                i -= 1;
            }
            if i == seg_end {
                return None;
            }
            continue;
        }
        if i >= 1 && b[i - 1] == b':' {
            i -= 1;
            while i > 0 && b[i - 1].is_ascii_whitespace() {
                i -= 1;
            }
            let end = i;
            while i > 0 && is_ident_byte(b[i - 1]) {
                i -= 1;
            }
            if i == end {
                return None;
            }
            return Some(src[i..end].to_string());
        }
        return None;
    }
}

/// For `... = HashMap::...` at `at`, return the identifier left of `=`.
fn assignment_name(src: &str, at: usize) -> Option<String> {
    let b = src.as_bytes();
    let mut i = at;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 || b[i - 1] != b'=' || (i >= 2 && matches!(b[i - 2], b'=' | b'!' | b'<' | b'>')) {
        return None;
    }
    i -= 1;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_byte(b[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(src[i..end].to_string())
}

/// Resolve the receiver identifier of a `.method()` match at `at` (which
/// points at the `.`), skipping whitespace (multi-line chains) and an
/// optional `self.` prefix.
///
/// `other.name.iter()` (a field of some *other* value) resolves to `None`:
/// tracked names come from this file's own fields and locals, so a
/// same-named field reached through another struct would be a false
/// positive (e.g. a `Vec` field shadowing a tracked map's name).
fn receiver_name(src: &str, at: usize) -> Option<String> {
    let b = src.as_bytes();
    let mut i = at;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_byte(b[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    let name = &src[i..end];
    if name == "self" {
        return None; // bare `self.iter()` — not a tracked collection
    }
    // Reject `<expr>.name.method()` unless the prefix is exactly `self.`.
    let mut j = i;
    while j > 0 && b[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    if j > 0 && b[j - 1] == b'.' {
        let prefix = src[..j - 1].trim_end();
        let is_self = prefix.ends_with("self")
            && (prefix.len() == 4 || !is_ident_byte(prefix.as_bytes()[prefix.len() - 5]));
        if !is_self {
            return None;
        }
    }
    Some(name.to_string())
}

/// Is the tracked-name occurrence at `at` the sequence `for ... in [&][mut]
/// [self.] name`? Checks backwards for the `in` keyword.
fn preceded_by_for_in(src: &str, at: usize) -> bool {
    let b = src.as_bytes();
    let mut i = at;
    // Optional `self.` prefix.
    if i >= 5 && &src[i - 5..i] == "self." {
        i -= 5;
    }
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    // Optional `mut` (as in `in &mut map`).
    if i >= 3 && &src[i - 3..i] == "mut" && (i == 3 || !is_ident_byte(b[i - 4])) {
        i -= 3;
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
    }
    // Optional `&`.
    if i >= 1 && b[i - 1] == b'&' {
        i -= 1;
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
    }
    i >= 2 && &src[i - 2..i] == "in" && (i == 2 || !is_ident_byte(b[i - 3]))
}

/// Does a `.sort*` call appear in code within [`SORT_WINDOW_LINES`] lines
/// after the match at `at`? (The "visibly sorted before use" escape.)
fn visibly_sorted(src: &str, tokens: &[Token], index: &LineIndex, at: usize) -> bool {
    let (line, _) = index.line_col(src, at);
    let end = index
        .line_start(line + SORT_WINDOW_LINES + 1)
        .unwrap_or(src.len());
    for t in tokens {
        if t.kind != TokenKind::Code || t.end <= at || t.start >= end {
            continue;
        }
        let s = t.start.max(at);
        let e = t.end.min(end);
        if src[s..e].contains(".sort") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_file(path, src, &Config::default())
    }

    #[test]
    fn module_base_paths() {
        assert_eq!(module_base("crates/pfs/src/lib.rs"), "pfs");
        assert_eq!(
            module_base("crates/pfs/src/model/cache.rs"),
            "pfs::model::cache"
        );
        assert_eq!(module_base("crates/pfs/src/model/mod.rs"), "pfs::model");
        assert_eq!(
            module_base("crates/stellar/src/bin/stellar-tune.rs"),
            "stellar::bin::stellar_tune"
        );
        assert_eq!(
            module_base("crates/detlint/src/main.rs"),
            "detlint::bin::main"
        );
        assert_eq!(
            module_base("crates/bench/benches/tuning.rs"),
            "bench::benches::tuning"
        );
        assert_eq!(module_base("src/lib.rs"), "stellar_repro");
        assert_eq!(
            module_base("tests/integration_obs.rs"),
            "tests::integration_obs"
        );
        assert_eq!(
            module_base("examples/quickstart.rs"),
            "examples::quickstart"
        );
    }

    #[test]
    fn inline_module_resolution() {
        let src = "mod outer { mod inner { fn f() { } } } fn g() { }";
        let tokens = lex(src);
        let mods = inline_modules(src, &tokens);
        assert_eq!(mods.len(), 2);
        let f_at = src.find("fn f").unwrap();
        let g_at = src.find("fn g").unwrap();
        assert_eq!(module_at("c", &mods, f_at), "c::outer::inner");
        assert_eq!(module_at("c", &mods, g_at), "c");
    }

    #[test]
    fn strings_and_comments_never_match() {
        let src = concat!(
            "fn f() {\n",
            "    let _ = \"Instant::now inside a string\";\n",
            "    // Instant::now inside a comment\n",
            "    /* println! inside a block comment */\n",
            "    let _ = r#\"println!(raw)\"#;\n",
            "}\n",
        );
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d001_fires_and_eprintln_does_not_trip_d005() {
        let src = "fn f() { let t = std::time::Instant::now(); eprintln!(\"{t:?}\"); }";
        let d = lint("crates/pfs/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "D001");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn annotation_waives_and_is_used() {
        let src = "fn f() {\n    // detlint::allow(D001): sidecar timing only\n    let t = std::time::Instant::now();\n    let _ = t;\n}\n";
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn annotation_without_reason_is_meta_violation() {
        let src =
            "fn f() {\n    // detlint::allow(D001):\n    let t = std::time::Instant::now();\n}\n";
        let d = lint("crates/pfs/src/lib.rs", src);
        // The annotation is malformed, so the D001 still fires AND the
        // annotation is reported.
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|x| x.rule == "D001"));
        assert!(d.iter().any(|x| x.rule == META_RULE));
    }

    #[test]
    fn unused_annotation_is_meta_violation() {
        let src = "// detlint::allow(D001): stale waiver\nfn f() {}\n";
        let d = lint("crates/pfs/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, META_RULE);
        assert!(d[0].message.contains("unused"));
    }

    #[test]
    fn d002_tracks_fields_and_locals() {
        let src = "
use std::collections::HashMap;
struct S { agg: HashMap<u32, u32> }
impl S {
    fn f(&self) {
        for (k, v) in self.agg.iter() { let _ = (k, v); }
    }
}
fn g() {
    let mut m = HashMap::new();
    m.insert(1, 2);
    for x in &m { let _ = x; }
}
";
        let d = lint("crates/pfs/src/lib.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "D002"));
        assert!(d[0].message.contains("agg"));
        assert!(d[1].message.contains('m'));
    }

    #[test]
    fn d002_sorted_site_is_waived() {
        let src = "
use std::collections::HashMap;
fn f(m: HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}
";
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d002_vec_iteration_is_not_flagged() {
        let src = "
use std::collections::HashMap;
fn f(v: Vec<u32>, m: HashMap<u32, u32>) -> u32 {
    let _ = m.len();
    v.iter().sum()
}
";
        assert!(lint("crates/pfs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allowlist_by_module_glob() {
        let cfg = Config::parse("[rules.D005]\nallow = [\"*::bin::*\"]\n").unwrap();
        let src = "fn main() { println!(\"report\"); }";
        assert!(lint_file("crates/stellar/src/bin/stellar-tune.rs", src, &cfg).is_empty());
        assert_eq!(lint_file("crates/stellar/src/lib.rs", src, &cfg).len(), 1);
    }

    #[test]
    fn lint_files_rejects_unknown_config_rule() {
        let cfg = Config::parse("[rules.D999]\nallow = [\"x\"]\n").unwrap();
        assert!(lint_files(&[], &cfg).is_err());
    }
}
