//! Canonical-cone taint pass.
//!
//! The determinism contract pins the *canonical byte stream*: the JSONL
//! run records, campaign tables, and reports that must be bit-identical
//! across serial / parallel / latency / failure-injection runs. A
//! function can break that contract only if its behavior can reach those
//! bytes. This module computes the set of such functions — the
//! **canonical cone** — from the [`crate::graph::CallGraph`].
//!
//! Seeds are the emit sites themselves, named by module globs
//! ([`SEED_GLOBS`]): `stellar::obs` (ObsEvent construction and the
//! `JsonlEmitter` canonical half), `stellar::campaign::table`, and the
//! rule-merge / report paths in `agents`.
//!
//! The cone is then:
//!
//! ```text
//! roots = seeds ∪ ancestors(seeds)        // can call into an emit site
//! cone  = roots ∪ descendants(roots)      // anything those roots execute
//! ```
//!
//! Ancestors matter because a caller of an emit site decides *what* gets
//! emitted (e.g. a campaign worker ordering results before the table is
//! rendered). Descendants of those roots matter because any helper they
//! invoke computes values that flow into canonical bytes. A function with
//! no path to or from a seed — a bench harness helper, a progress-board
//! painter — is outside the cone, and rules D001–D008 do not fire there.
//!
//! Both closures are plain worklist BFS over `BTreeSet`s, so membership
//! is deterministic and independent of file input order (the graph
//! itself already is).

use crate::graph::{CallGraph, FnId};
use std::collections::BTreeSet;

/// Module globs whose functions seed the canonical cone. Matched with
/// [`crate::config::glob_match`] semantics (`*` crosses `::`).
pub const SEED_GLOBS: &[&str] = &[
    "stellar::obs*",
    "stellar::campaign::table",
    "agents::rules*",
    "agents::report*",
];

/// The canonical cone over a call graph.
#[derive(Debug)]
pub struct Cone {
    members: BTreeSet<FnId>,
    /// True when every function is a member (single-file mode).
    all: bool,
}

impl Cone {
    /// Compute the cone for `graph` from the default seed globs.
    pub fn compute(graph: &CallGraph) -> Cone {
        Cone::compute_with(graph, SEED_GLOBS)
    }

    /// Compute the cone for `graph` seeding from `seed_globs`.
    pub fn compute_with<S: AsRef<str>>(graph: &CallGraph, seed_globs: &[S]) -> Cone {
        let seeds: BTreeSet<FnId> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                seed_globs
                    .iter()
                    .any(|g| crate::config::glob_match(g.as_ref(), &f.module))
            })
            .map(|(id, _)| id)
            .collect();

        // Ancestors: everything that can reach a seed.
        let roots = closure(&seeds, |id| graph.callers[id].iter().copied());
        // Descendants of the roots: everything those roots may execute.
        let members = closure(&roots, |id| graph.callees[id].iter().copied());

        Cone {
            members,
            all: false,
        }
    }

    /// A cone containing every function — the single-file (`lint_file`)
    /// behavior, where no whole-program graph is available and the
    /// conservative answer is "everything is canonical".
    pub fn everything() -> Cone {
        Cone {
            members: BTreeSet::new(),
            all: true,
        }
    }

    /// Is `id` in the cone?
    pub fn contains(&self, id: FnId) -> bool {
        self.all || self.members.contains(&id)
    }

    /// Cone member ids, in ascending order. Empty (not "all fns") for
    /// [`Cone::everything`].
    pub fn members(&self) -> impl Iterator<Item = FnId> + '_ {
        self.members.iter().copied()
    }

    /// Number of explicit members (0 for [`Cone::everything`]).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no explicit member is recorded.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Transitive closure of `start` under `next`, worklist BFS. Terminates
/// because the visited set only grows and ids are finite.
fn closure<F, I>(start: &BTreeSet<FnId>, mut next: F) -> BTreeSet<FnId>
where
    F: FnMut(FnId) -> I,
    I: Iterator<Item = FnId>,
{
    let mut seen = start.clone();
    let mut work: Vec<FnId> = start.iter().copied().collect();
    while let Some(id) = work.pop() {
        for n in next(id) {
            if seen.insert(n) {
                work.push(n);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;

    fn build(files: &[(&str, &str)]) -> CallGraph {
        let files: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        CallGraph::build(&files)
    }

    fn member(g: &CallGraph, cone: &Cone, qualified: &str) -> bool {
        let id = g
            .fns
            .iter()
            .position(|f| f.qualified == qualified)
            .unwrap_or_else(|| panic!("no fn {qualified}"));
        cone.contains(id)
    }

    /// caller → seed → helper, plus an unrelated island.
    const FILES: &[(&str, &str)] = &[
        (
            "crates/stellar/src/obs.rs",
            "pub fn emit() { fmt_line(); }\nfn fmt_line() {}\n",
        ),
        (
            "crates/stellar/src/session.rs",
            "use crate::obs::emit;\npub fn step() { emit(); }\n",
        ),
        (
            "crates/bench/src/lib.rs",
            "pub fn island() { spin(); }\nfn spin() {}\n",
        ),
    ];

    #[test]
    fn seeds_ancestors_and_descendants_are_in() {
        let g = build(FILES);
        let cone = Cone::compute_with(&g, &["stellar::obs*"]);
        assert!(member(&g, &cone, "stellar::obs::emit"), "seed");
        assert!(member(&g, &cone, "stellar::obs::fmt_line"), "descendant");
        assert!(member(&g, &cone, "stellar::session::step"), "ancestor");
    }

    #[test]
    fn disconnected_fns_are_out() {
        let g = build(FILES);
        let cone = Cone::compute_with(&g, &["stellar::obs*"]);
        assert!(!member(&g, &cone, "bench::island"));
        assert!(!member(&g, &cone, "bench::spin"));
    }

    #[test]
    fn descendants_of_ancestors_are_in() {
        // step() calls emit() (seed) but also tidy(): tidy computes values
        // a canonical caller uses, so it is in the cone.
        let g = build(&[
            ("crates/stellar/src/obs.rs", "pub fn emit() {}\n"),
            (
                "crates/stellar/src/session.rs",
                "use crate::obs::emit;\npub fn step() { tidy(); emit(); }\nfn tidy() {}\n",
            ),
        ]);
        let cone = Cone::compute_with(&g, &["stellar::obs*"]);
        assert!(member(&g, &cone, "stellar::session::tidy"));
    }

    #[test]
    fn everything_cone_contains_arbitrary_ids() {
        let cone = Cone::everything();
        assert!(cone.contains(0));
        assert!(cone.contains(123_456));
        assert!(cone.is_empty());
    }

    #[test]
    fn cone_is_input_order_invariant() {
        let mut rev: Vec<(&str, &str)> = FILES.to_vec();
        rev.reverse();
        let g1 = build(FILES);
        let g2 = build(&rev);
        let c1 = Cone::compute_with(&g1, &["stellar::obs*"]);
        let c2 = Cone::compute_with(&g2, &["stellar::obs*"]);
        let names = |g: &CallGraph, c: &Cone| -> Vec<String> {
            c.members().map(|id| g.fns[id].qualified.clone()).collect()
        };
        assert_eq!(names(&g1, &c1), names(&g2, &c2));
    }
}
