//! `detlint` — the workspace determinism linter.
//!
//! The repository's central guarantee is that canonical JSONL run records
//! and campaign stdout are **byte-identical** across thread counts and
//! injected backend latency. CI enforces that dynamically by re-running a
//! seeded campaign three ways; `detlint` enforces it *statically*, by
//! rejecting the textual sources of nondeterminism at review time:
//!
//! | rule | forbids |
//! |------|---------|
//! | D001 | wall-clock reads (`Instant::now`, `SystemTime`) outside the timing sidecar |
//! | D002 | order-sensitive `HashMap`/`HashSet` iteration |
//! | D003 | RNG sources other than `simcore::chacha` |
//! | D004 | `available_parallelism` probes outside the documented sched fallback |
//! | D005 | stdout writes outside the CLI bins and `campaign::table` |
//!
//! Violations are waived either by a module-path glob in the committed
//! `detlint.toml` ([`config`]) or by an inline annotation with a mandatory
//! reason — `// detlint::allow(D00x): <reason>` — on the offending line or
//! the line above ([`rules`]). Malformed and unused annotations are
//! themselves violations, so waivers cannot rot.
//!
//! The engine is purely lexical: a minimal but correct Rust lexer
//! ([`lexer`]) partitions each file into code, comments, and literals, and
//! rules match only inside code spans. No rustc internals, no new
//! dependencies, deterministic output.
//!
//! Run it with `cargo run -p detlint` from the workspace root; see
//! `ARCHITECTURE.md` ("Determinism enforcement") for the full contract.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use config::Config;
pub use rules::{lint_file, lint_files, Diagnostic, RULES};
