//! `detlint` — the workspace determinism linter.
//!
//! The repository's central guarantee is that canonical JSONL run records
//! and campaign stdout are **byte-identical** across thread counts and
//! injected backend latency. CI enforces that dynamically by re-running a
//! seeded campaign three ways; `detlint` enforces it *statically*, by
//! rejecting the textual sources of nondeterminism at review time:
//!
//! | rule | forbids |
//! |------|---------|
//! | D001 | wall-clock reads (`Instant::now`, `SystemTime`) outside the timing sidecar |
//! | D002 | order-sensitive `HashMap`/`HashSet` iteration |
//! | D003 | RNG sources other than `simcore::chacha` |
//! | D004 | `available_parallelism` probes outside the documented sched fallback |
//! | D005 | stdout writes outside the CLI bins and `campaign::table` |
//! | D006 | non-total float ordering (`partial_cmp(..).unwrap()`) — `total_cmp` required |
//! | D007 | completion-order merges (channel `recv`, join-handle collection) |
//! | D008 | environment-dependent values (`std::env::var*`) |
//!
//! Since PR 9 the engine is **cone-aware**: a conservative cross-crate
//! call graph ([`graph`]) plus a taint pass ([`taint`]) compute the
//! *canonical cone* — every function whose behavior can reach canonical
//! bytes — and rules fire only inside it. Helper code that provably never
//! feeds canonical output (bench harness internals, progress painters)
//! needs no waivers at all.
//!
//! Violations inside the cone are waived either by a module-path glob in
//! the committed `detlint.toml` ([`config`]) or by an inline annotation
//! with a mandatory reason — `// detlint::allow(D00x): <reason>` — on the
//! offending line or the line above ([`rules`]). Malformed and unused
//! annotations are violations, and so is a `detlint.toml` entry whose
//! glob no longer matches any cone module, so waivers cannot rot.
//!
//! The engine is purely lexical: a minimal but correct Rust lexer
//! ([`lexer`]) partitions each file into code, comments, and literals, and
//! everything downstream — rules and call graph alike — matches only
//! inside code spans. No rustc internals, no new dependencies,
//! deterministic output (SARIF 2.1.0 via [`sarif`] for CI annotation).
//!
//! Run it with `cargo run -p detlint` from the workspace root; see
//! `ARCHITECTURE.md` ("Determinism enforcement") for the full contract.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod taint;
pub mod walk;

pub use config::Config;
pub use rules::{lint_file, lint_files, Analysis, Diagnostic, RULES};
