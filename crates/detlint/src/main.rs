//! CLI entry point: lint the workspace and report violations.
//!
//! ```text
//! detlint [--root DIR] [--config FILE] [--format text|json|sarif]
//!         [--out FILE] [--changed[=REF]] [--list-rules]
//! ```
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage/config errors.
//! Diagnostics print to stdout as `file:line:col [rule] message`; with
//! `--format json` a machine-readable report is printed instead, and with
//! `--format sarif` a SARIF 2.1.0 document for CI annotation. `--out FILE`
//! writes the selected machine format to a file, keeping the human text on
//! stdout — that is what CI uploads as an artifact.
//!
//! `--changed[=REF]` (default `HEAD`) restricts *reported* diagnostics to
//! files changed vs a git ref (plus untracked files and `detlint.toml`
//! stale-waiver findings) for fast local/pre-commit runs. The cone
//! analysis still runs over the whole workspace — reachability is a
//! whole-program property — and when git is unavailable the flag falls
//! back to a full-workspace report.

#![forbid(unsafe_code)]

use detlint::rules::META_RULE;
use detlint::{lint_files, sarif, walk, Config, Diagnostic, RULES};
use serde::Serialize;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The machine-readable report emitted by `--format json` / `--out`.
#[derive(Serialize)]
struct Report {
    version: u32,
    root: String,
    violations: Vec<Diagnostic>,
    count: usize,
}

/// Output format selected by `--format`.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut out_path: Option<PathBuf> = None;
    let mut changed_ref: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config_path = args.next().map(PathBuf::from),
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("bad --format {other:?}; use text, json, or sarif");
                    return ExitCode::from(2);
                }
            },
            "--out" => out_path = args.next().map(PathBuf::from),
            "--changed" => changed_ref = Some("HEAD".to_string()),
            "--list-rules" => {
                for r in RULES {
                    println!("{}  {}", r.id, r.title);
                }
                println!(
                    "{META_RULE}  annotation hygiene (malformed/unused detlint::allow, \
                     stale detlint.toml entries)"
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: detlint [--root DIR] [--config FILE] [--format text|json|sarif] \
                     [--out FILE] [--changed[=REF]] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                if let Some(r) = other.strip_prefix("--changed=") {
                    if r.is_empty() {
                        eprintln!("--changed= needs a ref");
                        return ExitCode::from(2);
                    }
                    changed_ref = Some(r.to_string());
                    continue;
                }
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let config_path = config_path.unwrap_or_else(|| root.join("detlint.toml"));
    let cfg = match std::fs::read_to_string(&config_path) {
        Ok(text) => match Config::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Config::default(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let files = match walk::collect_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    // The cone analysis always sees the whole workspace; --changed only
    // filters which findings are reported.
    let mut diagnostics = match lint_files(&files, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if let Some(git_ref) = &changed_ref {
        match changed_files(&root, git_ref) {
            Some(changed) => {
                diagnostics.retain(|d| d.path == "detlint.toml" || changed.contains(&d.path));
            }
            None => {
                eprintln!("detlint: git unavailable; --changed falling back to full workspace");
            }
        }
    }

    let report = Report {
        version: 1,
        root: root.display().to_string(),
        count: diagnostics.len(),
        violations: diagnostics.clone(),
    };
    let machine_output = |format: Format| -> Option<String> {
        match format {
            Format::Text => None,
            Format::Json => Some(serde_json::to_string_pretty(&report).expect("report serializes")),
            Format::Sarif => Some(sarif::to_json(&diagnostics)),
        }
    };
    if let Some(path) = &out_path {
        // --out always writes a machine format; default to JSON for
        // backward compatibility with the CI artifact upload.
        let body = machine_output(format).unwrap_or_else(|| machine_output(Format::Json).unwrap());
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    match machine_output(format) {
        Some(body) if out_path.is_none() => println!("{body}"),
        _ => {
            for d in &diagnostics {
                println!("{d}");
            }
            if diagnostics.is_empty() {
                eprintln!("detlint: {} files clean", files.len());
            } else {
                eprintln!(
                    "detlint: {} violation(s) across {} files",
                    diagnostics.len(),
                    files.len()
                );
            }
        }
    }
    if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Workspace-relative paths changed vs `git_ref`, plus untracked files.
/// `None` when git is missing or errors (not a repo, bad ref, ...).
fn changed_files(root: &Path, git_ref: &str) -> Option<BTreeSet<String>> {
    let run = |args: &[&str]| -> Option<String> {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        String::from_utf8(out.stdout).ok()
    };
    let diff = run(&["diff", "--name-only", git_ref])?;
    let untracked = run(&["ls-files", "--others", "--exclude-standard"]).unwrap_or_default();
    Some(
        diff.lines()
            .chain(untracked.lines())
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect(),
    )
}

/// Default root: walk up from the current directory to the first directory
/// containing both `Cargo.toml` and `crates/` (the workspace layout), so
/// the tool works from any member directory.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
