//! CLI entry point: lint the workspace and report violations.
//!
//! ```text
//! detlint [--root DIR] [--config FILE] [--format text|json] [--out FILE] [--list-rules]
//! ```
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage/config errors.
//! Diagnostics print to stdout as `file:line:col [rule] message`; with
//! `--format json` a machine-readable report is printed instead (or
//! written to `--out FILE`, keeping the human text on stdout — that is
//! what CI uploads as an artifact).

#![forbid(unsafe_code)]

use detlint::rules::META_RULE;
use detlint::{lint_files, walk, Config, Diagnostic, RULES};
use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

/// The machine-readable report emitted by `--format json` / `--out`.
#[derive(Serialize)]
struct Report {
    version: u32,
    root: String,
    violations: Vec<Diagnostic>,
    count: usize,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut format_json = false;
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config_path = args.next().map(PathBuf::from),
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("bad --format {other:?}; use text or json");
                    return ExitCode::from(2);
                }
            },
            "--out" => out_path = args.next().map(PathBuf::from),
            "--list-rules" => {
                for r in RULES {
                    println!("{}  {}", r.id, r.title);
                }
                println!("{META_RULE}  annotation hygiene (malformed or unused detlint::allow)");
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: detlint [--root DIR] [--config FILE] [--format text|json] \
                     [--out FILE] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let config_path = config_path.unwrap_or_else(|| root.join("detlint.toml"));
    let cfg = match std::fs::read_to_string(&config_path) {
        Ok(text) => match Config::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Config::default(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let files = match walk::collect_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diagnostics = match lint_files(&files, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let report = Report {
        version: 1,
        root: root.display().to_string(),
        count: diagnostics.len(),
        violations: diagnostics.clone(),
    };
    if let Some(path) = &out_path {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if format_json && out_path.is_none() {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
        if diagnostics.is_empty() {
            eprintln!("detlint: {} files clean", files.len());
        } else {
            eprintln!(
                "detlint: {} violation(s) across {} files",
                diagnostics.len(),
                files.len()
            );
        }
    }
    if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Default root: walk up from the current directory to the first directory
/// containing both `Cargo.toml` and `crates/` (the workspace layout), so
/// the tool works from any member directory.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
