//! A minimal, offline serde facade.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of serde it actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, consumed exclusively through
//! the sibling `serde_json` crate. Instead of serde's visitor-based
//! zero-copy data model, values serialize into an owned [`Content`] tree
//! that `serde_json` renders and parses. The API surface (trait names,
//! derive attribute grammar for `rename`/`skip`) matches upstream so the
//! application code is source-compatible with the real crates.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The self-describing value tree produced by [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (values above `i64::MAX`).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Key-ordered map (insertion order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as i64, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::Int(v) => Some(*v),
            Content::UInt(v) => i64::try_from(*v).ok(),
            Content::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Numeric value as u64, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::UInt(v) => Some(*v),
            Content::Int(v) => u64::try_from(*v).ok(),
            Content::Float(f) if f.fract() == 0.0 && *f >= 0.0 && f.is_finite() => Some(*f as u64),
            _ => None,
        }
    }

    /// Numeric value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::Float(f) => Some(*f),
            Content::Int(v) => Some(*v as f64),
            Content::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Look up a key in map entries (used by derive-generated code).
pub fn content_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// New error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize into the [`Content`] data model.
pub trait Serialize {
    /// Convert `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// Deserialize from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a content tree.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c
                    .as_i64()
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| Error::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c
                    .as_u64()
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| Error::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

// 128-bit integers don't fit the JSON number model; values beyond the u64/
// i64 range serialize as decimal strings (and parse back from either form).
impl Serialize for u128 {
    fn to_content(&self) -> Content {
        match u64::try_from(*self) {
            Ok(v) => Content::UInt(v),
            Err(_) => Content::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        if let Some(v) = c.as_u64() {
            return Ok(u128::from(v));
        }
        c.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::new("expected u128"))
    }
}

impl Serialize for i128 {
    fn to_content(&self) -> Content {
        match i64::try_from(*self) {
            Ok(v) => Content::Int(v),
            Err(_) => Content::Str(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        if let Some(v) = c.as_i64() {
            return Ok(i128::from(v));
        }
        c.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::new("expected i128"))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64().ok_or_else(|| Error::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.as_f64().ok_or_else(|| Error::new("expected f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let s = c.as_str().ok_or_else(|| Error::new("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

// Borrowed strings serialize fine; deserializing into `&'static str` is
// impossible without leaking, so it reports an error (nothing in this
// workspace deserializes such a field — `ModelProfile` derives Deserialize
// but is only ever serialized).
impl Deserialize for &'static str {
    fn from_content(_c: &Content) -> Result<Self, Error> {
        Err(Error::new(
            "cannot deserialize into a borrowed &'static str",
        ))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::new("expected sequence"))?
            .iter()
            .map(Deserialize::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let s = c.as_seq().ok_or_else(|| Error::new("expected 2-tuple"))?;
        if s.len() != 2 {
            return Err(Error::new("expected 2-tuple"));
        }
        Ok((A::from_content(&s[0])?, B::from_content(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let s = c.as_seq().ok_or_else(|| Error::new("expected 3-tuple"))?;
        if s.len() != 3 {
            return Err(Error::new("expected 3-tuple"));
        }
        Ok((
            A::from_content(&s[0])?,
            B::from_content(&s[1])?,
            C::from_content(&s[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_map()
            .ok_or_else(|| Error::new("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}
