//! `#[derive(Serialize, Deserialize)]` for the vendored serde facade.
//!
//! Parses the item's token stream directly (no `syn`/`quote` — the build
//! environment is offline) and emits impls of `serde::Serialize` /
//! `serde::Deserialize` over the `serde::Content` data model. Supported
//! shapes — the full set this workspace uses:
//!
//! * structs with named fields, honouring `#[serde(rename = "...")]`,
//!   `#[serde(skip)]` (skipped fields deserialize via `Default`),
//!   `#[serde(default)]` (missing fields deserialize via `Default`), and
//!   `#[serde(skip_serializing_if = "path")]` (field omitted from the
//!   serialized map when `path(&field)` is true — deserialization still
//!   requires the field unless `default` is also present, like upstream);
//! * tuple structs (newtype structs serialize transparently, like serde);
//! * enums with unit, newtype, tuple and struct variants, in serde's
//!   externally-tagged representation.
//!
//! Generics are not supported (nothing in the workspace derives on a
//! generic type); encountering them is a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    ident: String,
    key: String,
    skip: bool,
    default: bool,
    skip_serializing_if: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    ident: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct SerdeAttrs {
    rename: Option<String>,
    skip: bool,
    default: bool,
    skip_serializing_if: Option<String>,
}

/// Consume leading attributes from `toks[*i..]`, collecting serde ones.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs {
        rename: None,
        skip: false,
        default: false,
        skip_serializing_if: None,
    };
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let Some(TokenTree::Group(g)) = toks.get(*i + 1) else {
                    panic!("attribute without body");
                };
                parse_serde_attr(&g.stream(), &mut attrs);
                *i += 2;
            }
            _ => return attrs,
        }
    }
}

/// Inspect one attribute body `[...]`; record serde(rename/skip) content.
fn parse_serde_attr(body: &TokenStream, attrs: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment or unrelated attribute
    }
    let Some(TokenTree::Group(args)) = toks.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(id) => {
                match id.to_string().as_str() {
                    "skip" | "skip_serializing" | "skip_deserializing" => {
                        attrs.skip = true;
                        j += 1;
                    }
                    "rename" => {
                        // rename = "literal"
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (inner.get(j + 1), inner.get(j + 2))
                        {
                            if eq.as_char() == '=' {
                                attrs.rename = Some(unquote(&lit.to_string()));
                            }
                        }
                        j += 3;
                    }
                    "default" => {
                        // Bare `default` only: `default = "path"` is unsupported.
                        if let Some(TokenTree::Punct(p)) = inner.get(j + 1) {
                            if p.as_char() == '=' {
                                panic!("unsupported serde attribute `default = ...` (bare `default` only)");
                            }
                        }
                        attrs.default = true;
                        j += 1;
                    }
                    "skip_serializing_if" => {
                        // skip_serializing_if = "path::to::predicate"
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (inner.get(j + 1), inner.get(j + 2))
                        {
                            if eq.as_char() == '=' {
                                attrs.skip_serializing_if = Some(unquote(&lit.to_string()));
                            }
                        }
                        j += 3;
                    }
                    other => panic!("unsupported serde attribute `{other}`"),
                }
            }
            _ => j += 1, // separators
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` visibility tokens.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip the tokens of one type, stopping at a top-level `,`.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parse `name: Type, ...` named fields (struct bodies and struct variants).
fn parse_named_fields(body: &TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let ident = name.to_string();
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("expected `:` after field `{ident}`"),
        }
        skip_type(&toks, &mut i);
        i += 1; // consume the `,` (or run past the end)
        fields.push(Field {
            key: attrs.rename.clone().unwrap_or_else(|| ident.clone()),
            ident,
            skip: attrs.skip,
            default: attrs.default,
            skip_serializing_if: attrs.skip_serializing_if,
        });
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant body.
fn tuple_arity(body: &TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < toks.len() {
        let _ = take_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        skip_type(&toks, &mut i);
        i += 1; // the `,`
        arity += 1;
    }
    arity
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let _ = take_attrs(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let ident = name.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Consume a trailing `,` if present (discriminants are unsupported).
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { ident, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _ = take_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("#[derive(Serialize/Deserialize)]: generic types are not supported by the vendored serde facade");
        }
    }
    match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(&g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: tuple_arity(&g.stream()),
                }
            }
            _ => Item::NamedStruct {
                name,
                fields: Vec::new(),
            },
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(&g.stream()),
            },
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                let push = format!(
                    "__m.push((\"{key}\".to_string(), ::serde::Serialize::to_content(&self.{id})));\n",
                    key = f.key,
                    id = f.ident
                );
                match &f.skip_serializing_if {
                    Some(pred) => pushes.push_str(&format!(
                        "if !{pred}(&self.{id}) {{ {push} }}\n",
                        id = f.ident
                    )),
                    None => pushes.push_str(&push),
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_content(&self) -> ::serde::Content {{\n\
                     let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n\
                     {pushes}\
                     ::serde::Content::Map(__m)\n\
                   }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_content(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                    .collect();
                format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vi = &v.ident;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vi} => ::serde::Content::Str(\"{vi}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_content(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vi}({binds}) => ::serde::Content::Map(vec![(\"{vi}\".to_string(), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.ident.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            let push = format!(
                                "__m.push((\"{key}\".to_string(), ::serde::Serialize::to_content({id})));\n",
                                key = f.key,
                                id = f.ident
                            );
                            match &f.skip_serializing_if {
                                Some(pred) => pushes.push_str(&format!(
                                    "if !{pred}({id}) {{ {push} }}\n",
                                    id = f.ident
                                )),
                                None => pushes.push_str(&push),
                            }
                        }
                        arms.push_str(&format!(
                            "{name}::{vi} {{ {binds} }} => {{\n\
                               let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n\
                               {pushes}\
                               ::serde::Content::Map(vec![(\"{vi}\".to_string(), ::serde::Content::Map(__m))])\n\
                             }}\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_content(&self) -> ::serde::Content {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

fn gen_named_ctor(path: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{id}: ::std::default::Default::default(),\n",
                id = f.ident
            ));
        } else if f.default {
            inits.push_str(&format!(
                "{id}: match ::serde::content_get({source}, \"{key}\") {{\n\
                   ::std::option::Option::Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
                   ::std::option::Option::None => ::std::default::Default::default(),\n\
                 }},\n",
                id = f.ident,
                key = f.key
            ));
        } else {
            inits.push_str(&format!(
                "{id}: match ::serde::content_get({source}, \"{key}\") {{\n\
                   ::std::option::Option::Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
                   ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::new(\"missing field `{key}`\")),\n\
                 }},\n",
                id = f.ident,
                key = f.key
            ));
        }
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let ctor = gen_named_ctor(name, fields, "__m");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let __m = __c.as_map().ok_or_else(|| ::serde::Error::new(\"{name}: expected map\"))?;\n\
                     ::std::result::Result::Ok({ctor})\n\
                   }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"
                )
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                    .collect();
                format!(
                    "let __s = __c.as_seq().ok_or_else(|| ::serde::Error::new(\"{name}: expected sequence\"))?;\n\
                     if __s.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::new(\"{name}: wrong tuple length\")); }}\n\
                     ::std::result::Result::Ok({name}({elems}))",
                    elems = elems.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     {body}\n\
                   }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vi = &v.ident;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vi}\" => ::std::result::Result::Ok({name}::{vi}),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vi}(::serde::Deserialize::from_content(__v)?))"
                            )
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                                .collect();
                            format!(
                                "{{ let __s = __v.as_seq().ok_or_else(|| ::serde::Error::new(\"{name}::{vi}: expected sequence\"))?;\n\
                                   if __s.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::new(\"{name}::{vi}: wrong tuple length\")); }}\n\
                                   ::std::result::Result::Ok({name}::{vi}({elems})) }}",
                                elems = elems.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vi}\" => {body},\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let ctor = gen_named_ctor(&format!("{name}::{vi}"), fields, "__vm");
                        data_arms.push_str(&format!(
                            "\"{vi}\" => {{\n\
                               let __vm = __v.as_map().ok_or_else(|| ::serde::Error::new(\"{name}::{vi}: expected map\"))?;\n\
                               ::std::result::Result::Ok({ctor})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     match __c {{\n\
                       ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::Error::new(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                       }},\n\
                       ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__k, __v) = &__entries[0];\n\
                         match __k.as_str() {{\n\
                           {data_arms}\
                           __other => ::std::result::Result::Err(::serde::Error::new(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                       }}\n\
                       _ => ::std::result::Result::Err(::serde::Error::new(\"{name}: expected string or single-entry map\")),\n\
                     }}\n\
                   }}\n\
                 }}"
            )
        }
    }
}
