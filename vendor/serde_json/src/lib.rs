//! JSON rendering and parsing over the vendored `serde::Content` model.
//!
//! Implements the call surface this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] and a Display-able [`Error`] — with
//! serde_json-compatible output: two-space pretty indentation, externally
//! tagged enums, shortest-round-trip float formatting.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON error (serialization or parse).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to pretty JSON (two-space indents, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse a JSON document into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(c: &Content, indent: Option<usize>, depth: usize, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::Int(v) => out.push_str(&v.to_string()),
        Content::UInt(v) => out.push_str(&v.to_string()),
        Content::Float(f) => {
            if f.is_finite() {
                // Rust's Display for f64 is shortest-round-trip, but renders
                // integral values without a decimal point; add `.0` so the
                // value stays a float on the way back in.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // serde_json also refuses NaN/inf
            }
        }
        Content::Str(s) => render_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte position.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let ch = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|t| t.chars().next())
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    self.pos = start + ch.len_utf8();
                    s.push(ch);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let txt = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(txt, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let txt = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(v) = txt.parse::<i64>() {
                return Ok(Content::Int(v));
            }
            if let Ok(v) = txt.parse::<u64>() {
                return Ok(Content::UInt(v));
            }
        }
        txt.parse::<f64>()
            .map(Content::Float)
            .map_err(|_| Error::new(format!("bad number `{txt}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a \"b\"\n").unwrap(), "\"a \\\"b\\\"\\n\"");
        let v: i64 = from_str("-7").unwrap();
        assert_eq!(v, -7);
        let f: f64 = from_str("2.0").unwrap();
        assert_eq!(f, 2.0);
        let s: String = from_str("\"x\\u0041\"").unwrap();
        assert_eq!(s, "xA");
    }

    #[test]
    fn roundtrip_vec() {
        let v = vec![1i64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<i64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = vec![vec![1i64]];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  [\n    1\n  ]\n]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<i64>("12, 3").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
