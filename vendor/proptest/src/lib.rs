//! A deterministic mini-proptest.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: range strategies over the primitive numeric types, simple
//! `"[class]{lo,hi}"` string patterns, tuple/Vec composition,
//! `collection::vec`, `sample::{select, subsequence}`, `Just`,
//! `prop_oneof!`, `prop_map`, `boxed()`, and the `proptest!` /
//! `prop_assert*` macros with `#![proptest_config(...)]` support.
//!
//! Differences from upstream, by design: sampling is seeded per (test name,
//! case index) so failures reproduce exactly; there is no shrinking — the
//! failing input is printed by the assertion itself; `prop_assert*` panic
//! immediately instead of returning `Result`.

pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` samples.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 sampling RNG, seeded per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG for one case of one named test.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; returns 0 for `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe sampling, used by [`BoxedStrategy`].
    trait DynSample<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynSample<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynSample<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Build from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range!(i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit() as f32
        }
    }

    /// String pattern strategy: supports `"[chars]{lo,hi}"` where `chars`
    /// is a list of literals and `a-z` style ranges. Any other pattern
    /// yields itself literally.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let Some((class, lo, hi)) = parse_class_pattern(self) else {
                return (*self).to_string();
            };
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| class[rng.below(class.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class_src: Vec<char> = rest[..close].chars().collect();
        let mut class = Vec::new();
        let mut i = 0;
        while i < class_src.len() {
            if i + 2 < class_src.len() && class_src[i + 1] == '-' {
                let (a, b) = (class_src[i], class_src[i + 2]);
                for c in (a as u32)..=(b as u32) {
                    class.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                class.push(class_src[i]);
                i += 1;
            }
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .to_string();
        let (lo, hi) = match reps.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        if class.is_empty() || hi < lo {
            return None;
        }
        Some((class, lo, hi))
    }

    macro_rules! impl_tuple {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );

    /// A Vec of strategies samples element-wise (proptest-compatible).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Vec` strategy with length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(width) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly select one element of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// An order-preserving random subsequence of `source` with length in
    /// `len` (clamped to the source length).
    pub fn subsequence<T: Clone>(source: Vec<T>, len: core::ops::Range<usize>) -> Subsequence<T> {
        assert!(len.start < len.end, "empty length range");
        Subsequence { source, len }
    }

    /// See [`subsequence`].
    pub struct Subsequence<T: Clone> {
        source: Vec<T>,
        len: core::ops::Range<usize>,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let width = (self.len.end - self.len.start) as u64;
            let want = (self.len.start + rng.below(width) as usize).min(self.source.len());
            // Reservoir-free index draw: pick `want` distinct indices, keep
            // source order.
            let mut indices: Vec<usize> = (0..self.source.len()).collect();
            for k in 0..want {
                let j = k + rng.below((indices.len() - k) as u64) as usize;
                indices.swap(k, j);
            }
            let mut picked: Vec<usize> = indices[..want].to_vec();
            picked.sort_unstable();
            picked.into_iter().map(|i| self.source[i].clone()).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each contained property over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        u64::from(__case),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 1u64..100, b in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((1..100).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn string_pattern_respects_class(s in "[a-c ]{2,8}") {
            prop_assert!(s.len() >= 2 && s.len() <= 8);
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')));
        }

        #[test]
        fn vec_and_tuple_compose(v in crate::collection::vec((0u8..3, 1u32..9), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (a, b) in v {
                prop_assert!(a < 3);
                prop_assert!((1..9).contains(&b));
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20..40).contains(&x));
        }

        #[test]
        fn subsequence_preserves_order(
            sub in crate::sample::subsequence(vec![1, 2, 3, 4, 5, 6], 1..4),
        ) {
            prop_assert!(!sub.is_empty() && sub.len() < 4);
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1000, 1..10);
        let a = s.sample(&mut TestRng::for_case("t", 3));
        let b = s.sample(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
