//! A sequential stand-in for the rayon prelude.
//!
//! The workspace uses rayon only for embarrassingly parallel `par_iter` /
//! `into_par_iter` → `map` → `collect` pipelines over pure functions, so a
//! sequential implementation is semantically identical (and keeps results
//! bit-deterministic by construction). Coarse-grained parallelism in this
//! repository lives in `stellar::campaign`, which drives `std::thread`
//! directly. Swap this crate for real rayon by deleting the vendored copy
//! once a crates.io mirror is reachable.

pub mod prelude {
    /// `into_par_iter()` — sequential: identical to `into_iter()`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Convert into a (sequential) "parallel" iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_iter()` on slices — sequential: identical to `iter()`.
    pub trait ParallelSlice<T> {
        /// Borrowing (sequential) "parallel" iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
}
