//! Minimal criterion-compatible harness.
//!
//! Runs each benchmark routine a small fixed number of iterations and
//! prints mean wall time — enough for `cargo bench` to compile, run and
//! give a rough signal offline. The API mirrors the subset the workspace's
//! benches use: `Criterion::{benchmark_group, bench_function}`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.

use std::time::Instant;

/// How batched inputs are grouped (ignored; one input per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Iterations per benchmark routine (a smoke run, not a statistical one).
const ITERS: u32 = 3;

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        report_elapsed(start, self.iters);
    }

    /// Time `routine` with a fresh `setup()` input per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut spent = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            spent += start.elapsed();
        }
        println!(
            "    {:>12.3} ms/iter (over {} iters)",
            spent.as_secs_f64() * 1e3 / f64::from(ITERS),
            ITERS
        );
    }
}

fn report_elapsed(start: Instant, iters: u32) {
    println!(
        "    {:>12.3} ms/iter (over {} iters)",
        start.elapsed().as_secs_f64() * 1e3 / f64::from(iters),
        iters
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the smoke harness is fixed-size.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench {}/{}", self.name, id);
        f(&mut Bencher { iters: ITERS });
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench {id}");
        f(&mut Bencher { iters: ITERS });
        self
    }
}

/// Re-export for benches importing `criterion::black_box`.
pub use std::hint::black_box;

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
