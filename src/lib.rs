//! Workspace-root umbrella crate for the STELLAR reproduction.
//!
//! This crate exists to host the workspace-level `examples/` and `tests/`
//! directories; it re-exports the member crates so examples can write
//! `use stellar_repro::stellar::...`.

#![forbid(unsafe_code)]

pub use agents;
pub use darshan;
pub use llmsim;
pub use pfs;
pub use ragx;
pub use simcore;
pub use stellar;
pub use workloads;
